"""Associative memory: prototype learning and nearest-prototype queries.

Training bundles all H vectors of a labelled brain state into one d-bit
prototype (Sec. III-B): the interictal prototype ``P1`` from a 30 s
interictal segment, the ictal prototype ``P2`` from 10-30 s of seizure.
Classification compares a query H to every prototype by Hamming distance
and returns the argmin label; the distances themselves feed the
postprocessor's confidence score delta = |eta(H, P1) - eta(H, P2)|.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.backend import (
    WORD_BITS,
    hamming_distance_packed,
    pack_bits,
    packed_words,
    unpack_bits,
)
from repro.hdc.bitsliced import (
    bitsliced_counts,
    planes_add,
    planes_greater_than,
)
from repro.hdc.ops import BundleAccumulator


class PrototypeAccumulator:
    """Streaming trainer for one class prototype.

    Thin wrapper over :class:`BundleAccumulator` that records how many
    H vectors contributed — useful for reporting and for the invariant
    tests (a prototype trained from one vector equals that vector).
    """

    def __init__(self, dim: int) -> None:
        self._bundle = BundleAccumulator(dim)

    @property
    def n_vectors(self) -> int:
        """Number of H vectors accumulated."""
        return self._bundle.count

    def add(self, h_vectors: np.ndarray) -> "PrototypeAccumulator":
        """Accumulate one ``(d,)`` vector or a ``(k, d)`` batch."""
        self._bundle.add(np.asarray(h_vectors, dtype=np.uint8))
        return self

    def finalize(self) -> np.ndarray:
        """Produce the majority-thresholded prototype, uint8 ``(d,)``."""
        return self._bundle.finalize()


class PackedPrototypeAccumulator:
    """Streaming trainer for one class prototype, packed end to end.

    The packed twin of :class:`PrototypeAccumulator`: H vectors arrive
    as uint64 words, per-batch counts come from the carry-save
    compressor tree, batches combine through the packed ripple adder,
    and the final majority is the bitwise magnitude comparator — the
    prototype never exists in unpacked form and is bit-exact against
    the integer-counter path.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self.words = packed_words(dim)
        self._planes: np.ndarray | None = None
        self._n = 0

    @property
    def n_vectors(self) -> int:
        """Number of H vectors accumulated."""
        return self._n

    def add(self, h_vectors: np.ndarray) -> "PackedPrototypeAccumulator":
        """Accumulate one ``(words,)`` vector or a ``(k, words)`` batch."""
        arr = np.asarray(h_vectors, dtype=np.uint64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.words:
            raise ValueError(
                f"expected (k, {self.words}) packed batch, got {arr.shape}"
            )
        if arr.shape[0] == 0:
            return self
        planes = bitsliced_counts(arr)
        self._planes = (
            planes
            if self._planes is None
            else planes_add(self._planes, planes)
        )
        self._n += arr.shape[0]
        return self

    def finalize(self) -> np.ndarray:
        """Produce the majority-thresholded prototype, uint64 ``(words,)``."""
        if self._planes is None:
            raise ValueError("cannot finalize an empty bundle")
        return planes_greater_than(self._planes, self._n // 2)


class AssociativeMemory:
    """Nearest-prototype classifier over binary hypervectors.

    Prototypes are stored both unpacked (for inspection) and packed (for
    XOR + popcount queries, mirroring the GPU classification kernel).

    Args:
        dim: Hypervector dimension d.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self._labels: list[int] = []
        self._label_table = np.zeros(0, dtype=np.int64)
        self._prototypes: list[np.ndarray] = []
        self._packed: np.ndarray | None = None

    @property
    def labels(self) -> list[int]:
        """Stored class labels in insertion order."""
        return list(self._labels)

    @property
    def n_classes(self) -> int:
        """Number of stored prototypes."""
        return len(self._labels)

    @property
    def words(self) -> int:
        """Packed word count per prototype/query."""
        return packed_words(self.dim)

    def _index(self, label: int) -> int:
        try:
            return self._labels.index(label)
        except ValueError:
            raise KeyError(f"no prototype stored for label {label}") from None

    def prototype(self, label: int) -> np.ndarray:
        """The stored prototype for ``label`` (uint8 copy)."""
        return self._prototypes[self._index(label)].copy()

    def prototype_packed(self, label: int) -> np.ndarray:
        """The stored prototype for ``label``, packed uint64 copy."""
        if self._packed is None:
            raise KeyError(f"no prototype stored for label {label}")
        return self._packed[self._index(label)].copy()

    def store(self, label: int, prototype: np.ndarray) -> None:
        """Insert or replace the prototype of class ``label``."""
        arr = np.asarray(prototype, dtype=np.uint8)
        if arr.shape != (self.dim,):
            raise ValueError(
                f"prototype must have shape ({self.dim},), got {arr.shape}"
            )
        if np.any(arr > 1):
            raise ValueError("prototype components must be 0/1")
        if label in self._labels:
            self._prototypes[self._labels.index(label)] = arr.copy()
        else:
            self._labels.append(label)
            self._prototypes.append(arr.copy())
        self._label_table = np.asarray(self._labels, dtype=np.int64)
        self._packed = pack_bits(np.stack(self._prototypes))

    def store_packed(self, label: int, prototype: np.ndarray) -> None:
        """Insert or replace the prototype of ``label`` from packed words.

        The unpacked inspection copy is derived from the words, so the
        packed form remains the source of truth for queries.
        """
        arr = np.asarray(prototype, dtype=np.uint64)
        if arr.shape != (self.words,):
            raise ValueError(
                f"packed prototype must have shape ({self.words},), "
                f"got {arr.shape}"
            )
        tail = self.dim - (self.words - 1) * WORD_BITS
        if tail < WORD_BITS and int(arr[-1] >> np.uint64(tail)):
            raise ValueError("padding bits beyond dim must be zero")
        self.store(label, unpack_bits(arr, self.dim))

    def train(self, label: int, h_vectors: np.ndarray) -> None:
        """Bundle a batch of H vectors into the prototype of ``label``."""
        acc = PrototypeAccumulator(self.dim)
        acc.add(np.asarray(h_vectors, dtype=np.uint8))
        self.store(label, acc.finalize())

    def train_packed(self, label: int, h_vectors: np.ndarray) -> None:
        """Bundle packed H vectors into the prototype of ``label``."""
        acc = PackedPrototypeAccumulator(self.dim)
        acc.add(np.asarray(h_vectors, dtype=np.uint64))
        self.store_packed(label, acc.finalize())

    def distances(self, h_vectors: np.ndarray) -> np.ndarray:
        """Hamming distances from queries to every prototype.

        Args:
            h_vectors: One ``(d,)`` query or a batch ``(n, d)``.

        Returns:
            int64 array ``(n, n_classes)`` (``(n_classes,)`` for a single
            query), columns ordered like :attr:`labels`.
        """
        if self._packed is None:
            raise RuntimeError("associative memory has no prototypes")
        arr = np.asarray(h_vectors, dtype=np.uint8)
        single = arr.ndim == 1
        if single:
            arr = arr[None, :]
        if arr.shape[1] != self.dim:
            raise ValueError(f"queries must have dimension {self.dim}")
        packed_queries = pack_bits(arr)
        dists = hamming_distance_packed(
            packed_queries[:, None, :], self._packed[None, :, :]
        )
        return dists[0] if single else dists

    def distances_packed(self, h_vectors: np.ndarray) -> np.ndarray:
        """Hamming distances from packed queries to every prototype.

        The batched query kernel of the packed backend: one XOR +
        popcount sweep over the whole ``(n_windows, words)`` block
        against all prototypes at once, no per-window Python loop and no
        unpacking.

        Args:
            h_vectors: One ``(words,)`` packed query or a batch
                ``(n, words)``.

        Returns:
            int64 array shaped like :meth:`distances`.
        """
        if self._packed is None:
            raise RuntimeError("associative memory has no prototypes")
        arr = np.asarray(h_vectors, dtype=np.uint64)
        single = arr.ndim == 1
        if single:
            arr = arr[None, :]
        if arr.shape[-1] != self.words:
            raise ValueError(
                f"packed queries must have {self.words} words, "
                f"got {arr.shape[-1]}"
            )
        dists = hamming_distance_packed(
            arr[:, None, :], self._packed[None, :, :]
        )
        return dists[0] if single else dists

    def _labels_from_distances(
        self, dists: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        label_arr = np.asarray(self._labels, dtype=np.int64)
        idx = np.argmin(dists, axis=-1)
        return label_arr[idx], dists

    def classify(self, h_vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-prototype labels and the full distance matrix.

        Returns:
            ``(labels, distances)`` where ``labels`` is an int64 array of
            class labels (ties resolve to the earliest-stored class, i.e.
            interictal when stored first — the conservative choice for a
            detector) and ``distances`` is as in :meth:`distances`.
        """
        return self._labels_from_distances(self.distances(h_vectors))

    def classify_packed(
        self, h_vectors: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`classify` for packed queries (same tie-breaking)."""
        return self._labels_from_distances(self.distances_packed(h_vectors))

    def packed_block(self) -> tuple[np.ndarray, np.ndarray]:
        """The memory's prototypes as one grouped-sweep block.

        Returns:
            ``(prototypes, labels)``: uint64 ``(n_classes, words)`` and
            int64 ``(n_classes,)`` arrays, insertion-ordered like
            :attr:`labels`.  Both are read-only views into the memory's
            state (``store`` replaces them wholesale, so holding a view
            is safe); feed them to :func:`grouped_classify_packed`.
        """
        if self._packed is None:
            raise RuntimeError("associative memory has no prototypes")
        return self._packed, self._label_table


def grouped_classify_packed(
    queries: np.ndarray,
    prototype_stack: np.ndarray,
    owners: np.ndarray,
    label_table: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Classify a mixed batch of packed queries, each against its owner.

    The cross-session serving kernel: rows of ``queries`` belong to
    *different* associative memories (e.g. different patients' models),
    and every row is scored against its own memory's prototype block in
    a single vectorized XOR + popcount sweep — no per-session Python
    loop, no unpacking.  Bit-exact against calling
    :meth:`AssociativeMemory.classify_packed` memory by memory.

    Args:
        queries: uint64 array ``(n, words)`` of packed H vectors.
        prototype_stack: uint64 array ``(n_memories, n_classes, words)``
            of packed prototypes (every memory the same class count —
            two for Laelaps detectors).
        owners: int array ``(n,)`` mapping each query row to its memory
            (row of ``prototype_stack``).
        label_table: int64 array ``(n_memories, n_classes)`` giving the
            class label of each prototype row, insertion-ordered as in
            :attr:`AssociativeMemory.labels`.

    Returns:
        ``(labels, distances)``: int64 ``(n,)`` class labels (ties
        resolve to the earliest-stored class, as in
        :meth:`AssociativeMemory.classify`) and int64
        ``(n, n_classes)`` Hamming distances.
    """
    query_arr, stack, owner_arr, table = _validate_grouped(
        queries, prototype_stack, owners, label_table
    )
    dists = hamming_distance_packed(
        query_arr[:, None, :], stack[owner_arr]
    )
    idx = np.argmin(dists, axis=-1)
    labels = table[owner_arr, idx]
    return labels, dists


def _validate_grouped(
    queries: np.ndarray,
    prototype_stack: np.ndarray,
    owners: np.ndarray,
    label_table: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared coercion/validation for the grouped-sweep implementations.

    Both :func:`grouped_classify_packed` and its native twin
    (:func:`repro.hdc.native.grouped_classify_packed_native`) enter
    through here, so argument contracts stay identical across engines.
    """
    query_arr = np.asarray(queries, dtype=np.uint64)
    stack = np.asarray(prototype_stack, dtype=np.uint64)
    owner_arr = np.asarray(owners, dtype=np.intp)
    table = np.asarray(label_table, dtype=np.int64)
    if query_arr.ndim != 2 or stack.ndim != 3:
        raise ValueError(
            f"need (n, words) queries and (m, c, words) prototypes, got "
            f"{query_arr.shape} and {stack.shape}"
        )
    if query_arr.shape[-1] != stack.shape[-1]:
        raise ValueError(
            f"word-count mismatch: {query_arr.shape[-1]} vs {stack.shape[-1]}"
        )
    if owner_arr.shape != (query_arr.shape[0],):
        raise ValueError(
            f"owners must be ({query_arr.shape[0]},), got {owner_arr.shape}"
        )
    if table.shape != stack.shape[:2]:
        raise ValueError(
            f"label table must be {stack.shape[:2]}, got {table.shape}"
        )
    return query_arr, stack, owner_arr, table
