"""Associative memory: prototype learning and nearest-prototype queries.

Training bundles all H vectors of a labelled brain state into one d-bit
prototype (Sec. III-B): the interictal prototype ``P1`` from a 30 s
interictal segment, the ictal prototype ``P2`` from 10-30 s of seizure.
Classification compares a query H to every prototype by Hamming distance
and returns the argmin label; the distances themselves feed the
postprocessor's confidence score delta = |eta(H, P1) - eta(H, P2)|.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.backend import hamming_distance_packed, pack_bits
from repro.hdc.ops import BundleAccumulator


class PrototypeAccumulator:
    """Streaming trainer for one class prototype.

    Thin wrapper over :class:`BundleAccumulator` that records how many
    H vectors contributed — useful for reporting and for the invariant
    tests (a prototype trained from one vector equals that vector).
    """

    def __init__(self, dim: int) -> None:
        self._bundle = BundleAccumulator(dim)

    @property
    def n_vectors(self) -> int:
        """Number of H vectors accumulated."""
        return self._bundle.count

    def add(self, h_vectors: np.ndarray) -> "PrototypeAccumulator":
        """Accumulate one ``(d,)`` vector or a ``(k, d)`` batch."""
        self._bundle.add(h_vectors)
        return self

    def finalize(self) -> np.ndarray:
        """Produce the majority-thresholded prototype, uint8 ``(d,)``."""
        return self._bundle.finalize()


class AssociativeMemory:
    """Nearest-prototype classifier over binary hypervectors.

    Prototypes are stored both unpacked (for inspection) and packed (for
    XOR + popcount queries, mirroring the GPU classification kernel).

    Args:
        dim: Hypervector dimension d.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self._labels: list[int] = []
        self._prototypes: list[np.ndarray] = []
        self._packed: np.ndarray | None = None

    @property
    def labels(self) -> list[int]:
        """Stored class labels in insertion order."""
        return list(self._labels)

    @property
    def n_classes(self) -> int:
        """Number of stored prototypes."""
        return len(self._labels)

    def prototype(self, label: int) -> np.ndarray:
        """The stored prototype for ``label`` (uint8 copy)."""
        try:
            idx = self._labels.index(label)
        except ValueError:
            raise KeyError(f"no prototype stored for label {label}") from None
        return self._prototypes[idx].copy()

    def store(self, label: int, prototype: np.ndarray) -> None:
        """Insert or replace the prototype of class ``label``."""
        arr = np.asarray(prototype, dtype=np.uint8)
        if arr.shape != (self.dim,):
            raise ValueError(
                f"prototype must have shape ({self.dim},), got {arr.shape}"
            )
        if np.any(arr > 1):
            raise ValueError("prototype components must be 0/1")
        if label in self._labels:
            self._prototypes[self._labels.index(label)] = arr.copy()
        else:
            self._labels.append(label)
            self._prototypes.append(arr.copy())
        self._packed = pack_bits(np.stack(self._prototypes))

    def train(self, label: int, h_vectors: np.ndarray) -> None:
        """Bundle a batch of H vectors into the prototype of ``label``."""
        acc = PrototypeAccumulator(self.dim)
        acc.add(h_vectors)
        self.store(label, acc.finalize())

    def distances(self, h_vectors: np.ndarray) -> np.ndarray:
        """Hamming distances from queries to every prototype.

        Args:
            h_vectors: One ``(d,)`` query or a batch ``(n, d)``.

        Returns:
            int64 array ``(n, n_classes)`` (``(n_classes,)`` for a single
            query), columns ordered like :attr:`labels`.
        """
        if self._packed is None:
            raise RuntimeError("associative memory has no prototypes")
        arr = np.asarray(h_vectors, dtype=np.uint8)
        single = arr.ndim == 1
        if single:
            arr = arr[None, :]
        if arr.shape[1] != self.dim:
            raise ValueError(f"queries must have dimension {self.dim}")
        packed_queries = pack_bits(arr)
        dists = hamming_distance_packed(
            packed_queries[:, None, :], self._packed[None, :, :]
        )
        return dists[0] if single else dists

    def classify(self, h_vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-prototype labels and the full distance matrix.

        Returns:
            ``(labels, distances)`` where ``labels`` is an int64 array of
            class labels (ties resolve to the earliest-stored class, i.e.
            interictal when stored first — the conservative choice for a
            detector) and ``distances`` is as in :meth:`distances`.
        """
        dists = self.distances(h_vectors)
        label_arr = np.asarray(self._labels, dtype=np.int64)
        idx = np.argmin(dists, axis=-1)
        return label_arr[idx], dists
