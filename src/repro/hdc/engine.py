"""Pluggable compute engines: one dispatch point for every backend.

Every layer above :mod:`repro.hdc` used to re-implement the
packed-vs-unpacked fork by hand — the detector branched in its
constructor, trainer and classifier, and the session manager, the
persistence formats, the shard workers and the CLI each carried their
own copy of the switch.  This module collapses all of that into one
object: a :class:`ComputeEngine` owns the spatial and temporal encoders
of its representation, feeds and queries the associative memory, packs
queries for the cross-session grouped sweep, and tags checkpoint
payloads — so callers hold an engine and never ask which domain an H
vector lives in.

Registered engines (:func:`engine_names`):

* ``unpacked`` — uint8 0/1 component arrays, the reference
  integer-counter path;
* ``packed`` — uint64 words end to end (the word layout of the paper's
  GPU kernels, Sec. V-B), batched XOR + popcount queries;
* ``packed-fused`` — the packed representation plus a fused
  encode→classify fast path: recordings are swept block by block with
  windows classified as soon as they complete (the full
  ``(n_windows, words)`` H array is never materialised), and
  single-window streaming queries run through a preallocated
  XOR/popcount scratch with no per-call validation layers;
* ``packed-native`` — the fused packed pipeline with both hot kernels
  (XOR+popcount sweep, carry-save bundling tree) JIT-compiled to
  multithreaded nogil machine code via the optional numba dependency
  (:mod:`repro.hdc.native`); registered even when numba is absent, but
  listed as unavailable and skipped by ``auto``;
* ``auto`` — resolves to the fastest *available* registered engine at
  detector construction (``packed-native`` with numba installed,
  ``packed-fused`` otherwise).

All engines are bit-exact against each other; the cross-engine property
suite (``tests/property/test_engine_equivalence.py``) enforces this over
odd dimensions, ragged chunking, mixed-engine session fleets and
mid-stream checkpoint/restore across engine names.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.hdc.associative import (
    AssociativeMemory,
    PackedPrototypeAccumulator,
    PrototypeAccumulator,
    grouped_classify_packed,
)
from repro.hdc.backend import pack_bits, packed_words, popcount_words
from repro.hdc.item_memory import ItemMemory
from repro.hdc.spatial import SpatialEncoder
from repro.hdc.spatial_packed import PackedSpatialEncoder
from repro.hdc.temporal import TemporalEncoder, WindowBundler
from repro.hdc.temporal_packed import PackedTemporalEncoder
from repro.signal.windows import WindowSpec

#: Registry name of the auto-selecting pseudo-engine.
AUTO_ENGINE = "auto"

#: Registered engine names.  Layers above ``repro.hdc`` must import
#: these (or iterate the registry) instead of spelling the literals —
#: enforced by ``repro lint`` rule RPR003.
UNPACKED_ENGINE = "unpacked"
PACKED_ENGINE = "packed"
PACKED_FUSED_ENGINE = "packed-fused"
PACKED_NATIVE_ENGINE = "packed-native"


class EngineUnavailableError(RuntimeError):
    """A registered engine cannot run here (missing optional accelerator).

    Engines stay *listed* even when their optional dependency is absent
    (``repro backends`` shows availability and the reason), but
    constructing one raises this with the remedy in the message.
    """

#: Windows completed per flush of the fused block sweep; bounds the
#: live H scratch at ``(chunk, words)`` regardless of recording length.
_FUSED_WINDOW_CHUNK = 512


@runtime_checkable
class ComputeEngine(Protocol):
    """What every registered engine provides to the layers above.

    An engine instance is bound to one detector's item memories and
    window geometry.  It owns:

    * the spatial encoder (:attr:`spatial`) and fresh streaming
      temporal encoders (:meth:`temporal_encoder`, whose
      ``state_dict``/``restore_state`` are the streaming-state
      export/import hooks used by checkpoints);
    * associative-memory training (:meth:`train`, :meth:`accumulator`,
      :meth:`store`) and querying (:meth:`classify_windows`,
      :meth:`encode_classify`);
    * the packed-query bridge for the cross-session grouped sweep
      (:meth:`pack_queries`);
    * its checkpoint payload tag (:attr:`name` — persisted so a saved
      model reopens on the engine that wrote it).
    """

    name: str
    dim: int
    words: int
    spatial: object

    def temporal_encoder(self) -> WindowBundler:
        """A fresh streaming window encoder in this engine's domain."""
        ...

    def windows_2d(self, h: np.ndarray) -> np.ndarray:
        """Validate H vectors (either accepted form) into a 2-D batch."""
        ...

    def accumulator(self):
        """A fresh prototype accumulator for this engine's H form."""
        ...

    def store(self, memory: AssociativeMemory, label: int,
              prototype: np.ndarray) -> None:
        """Store a finalized prototype in the engine's native form."""
        ...

    def train(self, memory: AssociativeMemory, label: int,
              h_vectors: np.ndarray) -> None:
        """Bundle an H batch (either form) into ``label``'s prototype."""
        ...

    def classify_windows(
        self, memory: AssociativeMemory, h: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched nearest-prototype sweep over H vectors (either form)."""
        ...

    def encode_classify(
        self, memory: AssociativeMemory, codes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode a code stream and classify every completed window."""
        ...

    def pack_queries(self, h: np.ndarray) -> np.ndarray:
        """H vectors as packed uint64 queries for the grouped sweep."""
        ...


class _EngineBase:
    """Shared scaffolding: dual-form validation and AM dispatch.

    The *only* place in the codebase that distinguishes window forms by
    trailing width/dtype — every engine accepts both the unpacked
    ``(n, d)`` uint8 and the packed ``(n, words)`` uint64 form (so
    detectors can cross-feed windows encoded on any engine), and the
    probe lives here rather than in any caller.
    """

    #: Registry key; subclasses override.
    name = "base"
    #: Whether H vectors natively live in packed uint64 words.
    native_packed = False
    #: Whether the hot path fuses encode and classify.
    fused = False
    #: Human-readable native window form, for the capability listing.
    window_form = "?"
    #: One-line capability summary, for the capability listing.
    summary = ""

    def __init__(
        self,
        code_memory: ItemMemory,
        electrode_memory: ItemMemory,
        spec: WindowSpec,
    ) -> None:
        if code_memory.dim != electrode_memory.dim:
            raise ValueError(
                "item memories must share a dimension, got "
                f"{code_memory.dim} and {electrode_memory.dim}"
            )
        self.dim = code_memory.dim
        self.words = packed_words(self.dim)
        self.spec = spec
        self.spatial = self._build_spatial(code_memory, electrode_memory)

    # -- representation hooks (subclasses override) --------------------

    def _build_spatial(self, code_memory, electrode_memory):
        raise NotImplementedError

    def temporal_encoder(self) -> WindowBundler:
        raise NotImplementedError

    def accumulator(self):
        raise NotImplementedError

    def store(self, memory: AssociativeMemory, label: int,
              prototype: np.ndarray) -> None:
        raise NotImplementedError

    # -- dual-form window handling -------------------------------------

    def windows_2d(self, h: np.ndarray) -> np.ndarray:
        """Validate H vectors in either form, returning a 2-D array.

        Dispatch is by trailing width: ``d`` columns means unpacked,
        ``packed_words(d)`` columns means packed (the two can never
        coincide for ``d >= 2``).
        """
        arr = np.atleast_2d(np.asarray(h))
        if arr.ndim != 2 or arr.shape[1] not in (self.dim, self.words):
            raise ValueError(
                f"H vectors must have {self.dim} (unpacked) or "
                f"{self.words} (packed) columns, got shape {arr.shape}"
            )
        if arr.shape[1] == self.dim:
            return arr.astype(np.uint8, copy=False)
        return arr.astype(np.uint64, copy=False)

    @staticmethod
    def _is_packed(arr: np.ndarray) -> bool:
        return arr.dtype == np.uint64

    def pack_queries(self, h: np.ndarray) -> np.ndarray:
        """Validated H vectors as ``(n, words)`` uint64 grouped queries."""
        arr = self.windows_2d(h)
        return arr if self._is_packed(arr) else pack_bits(arr)

    # -- associative-memory dispatch -----------------------------------

    def train(self, memory: AssociativeMemory, label: int,
              h_vectors: np.ndarray) -> None:
        arr = self.windows_2d(h_vectors)
        if self._is_packed(arr):
            memory.train_packed(label, arr)
        else:
            memory.train(label, arr)

    def classify_windows(
        self, memory: AssociativeMemory, h: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        arr = self.windows_2d(h)
        if self._is_packed(arr):
            return memory.classify_packed(arr)
        return memory.classify(arr)

    def encode_classify(
        self, memory: AssociativeMemory, codes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Reference sweep: encode everything, then one batched query."""
        h = self.temporal_encoder().encode_all(codes)
        return self.classify_windows(memory, h)

    #: Cross-session grouped-sweep implementation used when every
    #: session of a tick shares this engine; engines with a native
    #: grouped kernel override it (same signature, bit-exact).
    grouped_kernel = staticmethod(grouped_classify_packed)

    # -- capability listing --------------------------------------------

    @classmethod
    def available(cls) -> tuple[bool, str | None]:
        """Whether the engine can be constructed here, with the reason.

        Engines backed by optional accelerators override this; the
        default toolchain (numpy) is always present.
        """
        return True, None

    @classmethod
    def auto_eligible(cls) -> bool:
        """Whether ``auto`` may resolve to this engine on this host."""
        return cls.available()[0]

    @classmethod
    def describe(cls, dim: int = 10_000) -> dict:
        """Capability/word-layout row for the ``repro backends`` CLI."""
        ok, why = cls.available()
        return {
            "name": cls.name,
            "window_form": cls.window_form,
            "width_at_dim": packed_words(dim) if cls.native_packed else dim,
            "fused": cls.fused,
            "available": ok,
            "unavailable_reason": why,
            "summary": cls.summary,
        }


_REGISTRY: dict[str, type[_EngineBase]] = {}


def register_engine(cls: type[_EngineBase]) -> type[_EngineBase]:
    """Class decorator adding an engine to the named registry."""
    _REGISTRY[cls.name] = cls
    return cls


@register_engine
class UnpackedEngine(_EngineBase):
    """Reference integer-counter engine over uint8 component arrays."""

    name = UNPACKED_ENGINE
    window_form = "uint8 (n, d)"
    summary = "reference integer-counter path; one byte per component"

    def _build_spatial(self, code_memory, electrode_memory):
        return SpatialEncoder(code_memory, electrode_memory)

    def temporal_encoder(self) -> TemporalEncoder:
        return TemporalEncoder(self.spatial, self.spec)

    def accumulator(self) -> PrototypeAccumulator:
        return PrototypeAccumulator(self.dim)

    def store(self, memory: AssociativeMemory, label: int,
              prototype: np.ndarray) -> None:
        memory.store(label, prototype)


@register_engine
class PackedEngine(_EngineBase):
    """Word-domain engine: uint64 H vectors end to end (Sec. V-B)."""

    name = PACKED_ENGINE
    native_packed = True
    window_form = "uint64 (n, ceil(d/64))"
    summary = "bit-parallel carry-save encoding, batched XOR+popcount sweep"

    def _build_spatial(self, code_memory, electrode_memory):
        return PackedSpatialEncoder(code_memory, electrode_memory)

    def temporal_encoder(self) -> PackedTemporalEncoder:
        return PackedTemporalEncoder(self.spatial, self.spec)

    def accumulator(self) -> PackedPrototypeAccumulator:
        return PackedPrototypeAccumulator(self.dim)

    def store(self, memory: AssociativeMemory, label: int,
              prototype: np.ndarray) -> None:
        memory.store_packed(label, prototype)


@register_engine
class PackedFusedEngine(PackedEngine):
    """Packed engine with a fused encode→classify hot path.

    Two fusions on top of :class:`PackedEngine`:

    * **block sweep** (:meth:`encode_classify`) — the code stream is fed
      to the temporal encoder in slices sized to complete at most
      ``_FUSED_WINDOW_CHUNK`` windows, and each slice's H vectors are
      queried against the prototypes immediately and dropped, so the
      intermediate ``(n_windows, words)`` H array of the packed path is
      never materialised (peak scratch is ``(chunk, words)``);
    * **single-window streaming query** (:meth:`classify_windows` with
      one native window, the per-tick shape of a live stream) — XOR into
      a preallocated scratch against the memory's prototype block, one
      popcount, one reduction; none of the layered re-validation,
      re-packing or label-table rebuilds of the general path.
    """

    name = PACKED_FUSED_ENGINE
    fused = True
    summary = (
        "packed layout plus fused encode-classify block sweep and a "
        "preallocated single-window streaming query"
    )

    def __init__(self, code_memory, electrode_memory, spec) -> None:
        super().__init__(code_memory, electrode_memory, spec)
        self._xor_scratch: np.ndarray | None = None

    def classify_windows(
        self, memory: AssociativeMemory, h: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        # The live-stream hot path gets one cheap shape probe instead of
        # the general dual-form validation: at ~4 us per tick, the
        # layered checks of windows_2d() are a measurable share.
        arr = np.asarray(h)
        if (
            arr.dtype == np.uint64
            and arr.ndim == 2
            and arr.shape[1] == self.words
        ):
            return self._fused_query(memory, arr)
        arr = self.windows_2d(arr)
        if not self._is_packed(arr):
            return memory.classify(arr)
        return self._fused_query(memory, arr)

    def _fused_query(
        self, memory: AssociativeMemory, arr: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """XOR + popcount against the prototype block, minimal overhead."""
        block, label_table = memory.packed_block()
        if arr.shape[0] == 1:
            scratch = self._xor_scratch
            if scratch is None or scratch.shape != block.shape:
                scratch = self._xor_scratch = np.empty_like(block)
            np.bitwise_xor(block, arr[0], out=scratch)
            dists = popcount_words(scratch).sum(axis=-1, dtype=np.int64)
            # label_table is replaced wholesale by store(), never
            # mutated, so handing out a slice view is safe (see
            # AssociativeMemory.packed_block) and saves an allocation.
            idx = dists.argmin()
            return label_table[idx : idx + 1], dists[None, :]
        # Multi-window batches gain nothing from the scratch: reuse the
        # memory's batched sweep so distance/tie-break semantics have a
        # single implementation.
        return memory.classify_packed(arr)

    def encode_classify(
        self, memory: AssociativeMemory, codes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused block sweep: classify windows as their blocks complete."""
        encoder = self.temporal_encoder()
        slice_samples = _FUSED_WINDOW_CHUNK * self.spec.step_samples
        labels_parts: list[np.ndarray] = []
        dists_parts: list[np.ndarray] = []
        arr = np.asarray(codes)
        for start in range(0, max(arr.shape[0], 1), slice_samples):
            h = encoder.feed(arr[start : start + slice_samples])
            if h.shape[0]:
                labels, dists = self._fused_query(memory, h)
                labels_parts.append(labels)
                dists_parts.append(dists)
        if not labels_parts:
            n_classes = memory.n_classes
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, n_classes), dtype=np.int64),
            )
        return (
            np.concatenate(labels_parts),
            np.concatenate(dists_parts, axis=0),
        )


#: Fastest-first preference order used by the ``auto`` pseudo-engine;
#: candidates whose :meth:`_EngineBase.auto_eligible` says no on this
#: host (e.g. ``packed-native`` without numba) are skipped.
_AUTO_PREFERENCE = (
    PACKED_NATIVE_ENGINE,
    PACKED_FUSED_ENGINE,
    PACKED_ENGINE,
    UNPACKED_ENGINE,
)


def engine_names() -> tuple[str, ...]:
    """Registered engine names, registration-ordered (without ``auto``)."""
    return tuple(_REGISTRY)


def backend_choices() -> tuple[str, ...]:
    """Every valid ``LaelapsConfig.backend`` value, including ``auto``."""
    return engine_names() + (AUTO_ENGINE,)


def resolve_engine_name(name: str) -> str:
    """Resolve a backend string to a concrete registered engine name.

    ``auto`` resolves to the fastest available engine; anything else
    must be a registered name.

    Raises:
        ValueError: For unknown names, listing the valid choices.
    """
    if name == AUTO_ENGINE:
        for candidate in _AUTO_PREFERENCE:
            if (
                candidate in _REGISTRY
                and _REGISTRY[candidate].auto_eligible()
            ):
                return candidate
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown compute engine {name!r}; valid choices are "
            f"{backend_choices()}"
        )
    return name


def build_engine(
    name: str,
    code_memory: ItemMemory,
    electrode_memory: ItemMemory,
    spec: WindowSpec,
) -> _EngineBase:
    """Construct the named engine bound to one detector's memories.

    Args:
        name: A registered engine name or ``"auto"``.
        code_memory: IM1 — LBP-code atomic vectors.
        electrode_memory: IM2 — electrode-name atomic vectors.
        spec: Window geometry in samples.

    Raises:
        ValueError: For unknown names, listing the valid choices.
        EngineUnavailableError: For a registered engine whose optional
            accelerator is missing on this host.
    """
    return _REGISTRY[resolve_engine_name(name)](
        code_memory, electrode_memory, spec
    )


def engine_capabilities(dim: int = 10_000) -> list[dict]:
    """Capability/word-layout rows for every registered engine.

    The data behind the ``repro backends`` CLI listing: one dict per
    engine (name, native window form, trailing width at ``dim``, fused
    flag, availability with reason, summary).  The ``auto``
    pseudo-engine is not listed — ask :func:`resolve_engine_name` what
    it currently resolves to.
    """
    return [cls.describe(dim) for cls in _REGISTRY.values()]


# Importing the native module registers the ``packed-native`` engine
# (kept in its own module so the optional numba import stays isolated
# there — lint rule RPR010).  It must come last: native.py imports the
# base classes defined above.
from repro.hdc import native as _native  # noqa: E402,F401
