"""Packed spatial encoder: the Fig. 2 dataflow without unpacking.

Functionally identical to :class:`repro.hdc.spatial.SpatialEncoder` but
operating entirely on packed uint64 words: per sample it XORs the packed
electrode and code vectors (binding) and accumulates the bound masks in
a :class:`~repro.hdc.bitsliced.BitslicedCounter`, whose magnitude
comparator implements the majority — exactly the XOR / transpose /
popcount structure of the paper's GPU encoding kernel restated for
64-bit CPU words.

Batch encoding reduces all samples of a chunk at once: per electrode one
gather from the packed bound table, then a vectorised carry-save
compressor tree (:func:`repro.hdc.bitsliced.bitsliced_counts`) and a
bitwise magnitude comparator produce every spatial record in a handful
of full-width word operations — the packed backend of
:class:`repro.core.detector.LaelapsDetector` runs entirely through this
path and is verified word-exact against the unpacked encoder.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.backend import pack_bits, packed_words
from repro.hdc.bitsliced import (
    BitslicedCounter,
    bitsliced_counts,
    planes_greater_than,
)
from repro.hdc.item_memory import ItemMemory

#: Word budget per batch chunk (~64 MiB of gathered masks); keeps the
#: (n_electrodes, chunk, words) intermediate cache-friendly.
_CHUNK_WORDS = 8_000_000


class PackedSpatialEncoder:
    """Bit-sliced spatial-record encoder (packed in, packed out).

    Args:
        code_memory: IM1 — LBP-code atomic vectors.
        electrode_memory: IM2 — electrode-name atomic vectors.
    """

    def __init__(
        self, code_memory: ItemMemory, electrode_memory: ItemMemory
    ) -> None:
        if code_memory.dim != electrode_memory.dim:
            raise ValueError(
                "item memories must share a dimension, got "
                f"{code_memory.dim} and {electrode_memory.dim}"
            )
        self.dim = code_memory.dim
        self.n_electrodes = electrode_memory.n_items
        self.n_codes = code_memory.n_items
        #: Packed word count per hypervector, ``packed_words(dim)``.
        self.words = packed_words(self.dim)
        # Precompute the packed bound table (n_electrodes, n_codes, words):
        # the software analogue of IM1/IM2 staged in shared memory.
        packed_codes = pack_bits(code_memory.vectors)
        packed_electrodes = pack_bits(electrode_memory.vectors)
        self._table = (
            packed_electrodes[:, None, :] ^ packed_codes[None, :, :]
        )

    def encode_sample_packed(self, codes: np.ndarray) -> np.ndarray:
        """Spatial record of one sample, packed, shape ``(words,)``."""
        arr = np.asarray(codes)
        if arr.shape != (self.n_electrodes,):
            raise ValueError(
                f"expected ({self.n_electrodes},) codes, got {arr.shape}"
            )
        if arr.min() < 0 or arr.max() >= self.n_codes:
            raise ValueError(f"code out of range [0, {self.n_codes})")
        counter = BitslicedCounter(self.dim, self.n_electrodes)
        for j in range(self.n_electrodes):
            counter.add(self._table[j, arr[j]])
        return counter.greater_than(self.n_electrodes // 2)

    def encode_packed(self, codes: np.ndarray) -> np.ndarray:
        """Spatial records for a batch, packed, ``(n_samples, words)``.

        Vectorised over samples: gathers every bound mask of the chunk
        from the packed table and reduces the electrode axis with the
        carry-save compressor tree, so the per-sample Python loop of the
        reference path never runs on the hot path.
        """
        arr = np.asarray(codes)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.n_electrodes:
            raise ValueError(
                f"expected (n_samples, {self.n_electrodes}), got {arr.shape}"
            )
        n_samples = arr.shape[0]
        out = np.empty((n_samples, self.words), dtype=np.uint64)
        if n_samples == 0:
            return out
        if arr.min() < 0 or arr.max() >= self.n_codes:
            raise ValueError(f"code out of range [0, {self.n_codes})")
        chunk = max(1, _CHUNK_WORDS // (self.n_electrodes * self.words))
        electrode_index = np.arange(self.n_electrodes)
        for start in range(0, n_samples, chunk):
            stop = min(start + chunk, n_samples)
            # (stop - start, n_electrodes, words) gather, electrode-major
            # for the reduction along axis 0.
            masks = self._table[electrode_index, arr[start:stop]]
            planes = bitsliced_counts(np.ascontiguousarray(masks.swapaxes(0, 1)))
            out[start:stop] = planes_greater_than(
                planes, self.n_electrodes // 2
            )
        return out

    def encode(self, codes: np.ndarray) -> np.ndarray:
        """Unpacked uint8 records, drop-in compatible with the default
        encoder (used by the equivalence tests)."""
        from repro.hdc.backend import unpack_bits

        return unpack_bits(self.encode_packed(codes), self.dim)
