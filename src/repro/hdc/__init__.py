"""Hyperdimensional-computing substrate.

Binary hypervectors are represented in two interchangeable forms:

* **unpacked** — ``uint8`` arrays of 0/1 with one byte per component; the
  working representation of the encoders because bundling needs exact
  per-component counters, and
* **packed** — ``uint64`` arrays with 64 components per word (mirroring the
  32-bit word packing of the paper's GPU implementation); the storage and
  similarity-search representation, using hardware popcounts via
  ``numpy.bitwise_count``.

``repro.hdc.ops`` implements the two HD arithmetic operations of the paper
(binding = XOR, bundling = componentwise majority) plus permutation and
Hamming distance; ``repro.hdc.item_memory`` draws the seeded atomic
vectors; ``repro.hdc.spatial``/``repro.hdc.temporal`` implement the Fig. 1
encoder; ``repro.hdc.associative`` is the two-prototype associative memory
(including the grouped cross-session sweep used by the serving layers).
The packed half of the substrate never unpacks: ``repro.hdc.backend``
owns the word layout, ``repro.hdc.bitsliced`` the carry-save counting,
and ``repro.hdc.spatial_packed``/``repro.hdc.temporal_packed`` mirror the
encoders bit-exactly in the word domain.

``repro.hdc.engine`` is the single dispatch point between the forms: a
named registry of :class:`~repro.hdc.engine.ComputeEngine` objects
(``unpacked``, ``packed``, the fused ``packed-fused`` fast path and the
``auto`` selector) that every layer above — detector, streaming,
sessions, persistence, serving, CLI — routes through instead of
branching on a backend string or probing array widths.
"""

from repro.hdc.associative import (
    AssociativeMemory,
    PackedPrototypeAccumulator,
    PrototypeAccumulator,
)
from repro.hdc.backend import (
    hamming_distance,
    hamming_distance_packed,
    pack_bits,
    packed_words,
    permute_packed,
    popcount_words,
    random_bits,
    unpack_bits,
)
from repro.hdc.bitsliced import (
    BitslicedCounter,
    bitsliced_counts,
    planes_add,
    planes_from_counts,
    planes_greater_than,
    planes_to_counts,
)
from repro.hdc.engine import (
    AUTO_ENGINE,
    ComputeEngine,
    PackedEngine,
    PackedFusedEngine,
    UnpackedEngine,
    backend_choices,
    build_engine,
    engine_capabilities,
    engine_names,
    register_engine,
    resolve_engine_name,
)
from repro.hdc.item_memory import ItemMemory, bound_table
from repro.hdc.ops import (
    BundleAccumulator,
    bind,
    bundle,
    majority_from_counts,
    normalized_hamming,
    permute,
)
from repro.hdc.spatial import SpatialEncoder
from repro.hdc.spatial_packed import PackedSpatialEncoder
from repro.hdc.temporal import TemporalEncoder, encode_recording
from repro.hdc.temporal_packed import (
    PackedTemporalEncoder,
    encode_recording_packed,
)

__all__ = [
    "pack_bits",
    "unpack_bits",
    "packed_words",
    "permute_packed",
    "popcount_words",
    "random_bits",
    "hamming_distance",
    "hamming_distance_packed",
    "bitsliced_counts",
    "planes_add",
    "planes_from_counts",
    "planes_greater_than",
    "planes_to_counts",
    "bind",
    "bundle",
    "permute",
    "majority_from_counts",
    "normalized_hamming",
    "BundleAccumulator",
    "ItemMemory",
    "bound_table",
    "SpatialEncoder",
    "PackedSpatialEncoder",
    "BitslicedCounter",
    "TemporalEncoder",
    "encode_recording",
    "PackedTemporalEncoder",
    "encode_recording_packed",
    "AssociativeMemory",
    "PrototypeAccumulator",
    "PackedPrototypeAccumulator",
    "AUTO_ENGINE",
    "ComputeEngine",
    "UnpackedEngine",
    "PackedEngine",
    "PackedFusedEngine",
    "backend_choices",
    "build_engine",
    "engine_capabilities",
    "engine_names",
    "register_engine",
    "resolve_engine_name",
]
