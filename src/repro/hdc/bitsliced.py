"""Bit-sliced counting over packed hypervectors.

The GPU encoding kernel (Fig. 2) never unpacks vectors: it XORs packed
words, transposes 32 x 32 bit tiles and popcounts, so the majority of
32 electrodes costs a handful of word operations.  This module is the
software analogue: a **carry-save bit-sliced counter** holds one packed
register per binary digit, so adding a d-bit mask costs
``O(log2(capacity))`` word operations on all d positions at once, and
thresholding (the majority test) is a bitwise magnitude comparator —
no unpacking anywhere.

Used by :class:`repro.hdc.spatial_packed.PackedSpatialEncoder`; the
plain integer-counter encoder remains the default (numpy's gather/sum
is faster for wide electrode counts), but this path is word-exact
against it and mirrors the embedded implementation's data layout.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.backend import pack_bits, packed_words, unpack_bits

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def plane_depth(k: int) -> int:
    """Digit planes needed to count up to ``k`` ones per position.

    The depth contract shared by :func:`bitsliced_counts` and its
    native kernel twin (:func:`repro.hdc.native.native_bitsliced_counts`):
    ``bit_length(k)`` digits hold every count in ``[0, k]``.  Plane
    consumers (:func:`planes_add`, :func:`planes_greater_than`,
    :func:`planes_to_counts`) depend only on the decoded counts, so the
    two implementations stay interchangeable downstream.
    """
    if k < 1:
        raise ValueError(f"mask count must be >= 1, got {k}")
    return max(1, int(k).bit_length())


def _carry_save_add(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One 3:2 compressor: three same-weight planes -> (sum, carry)."""
    partial = a ^ b
    return partial ^ c, (a & b) | (c & partial)


def _reduce_plane(level: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
    """Compress ``(m, ...)`` same-weight masks to one plane plus carries.

    Applies 3:2 compressors in bulk (a Wallace-tree level per call), so
    the work per pass is a handful of full-width numpy operations rather
    than one Python iteration per mask.
    """
    carries: list[np.ndarray] = []
    while level.shape[0] > 2:
        groups = level.shape[0] // 3
        triples = level[: 3 * groups].reshape((groups, 3) + level.shape[1:])
        total, carry = _carry_save_add(
            triples[:, 0], triples[:, 1], triples[:, 2]
        )
        carries.append(carry)
        rest = level[3 * groups :]
        level = total if rest.shape[0] == 0 else np.concatenate(
            [total, rest], axis=0
        )
    if level.shape[0] == 2:
        carries.append((level[0] & level[1])[None])
        plane = level[0] ^ level[1]
    else:
        plane = level[0]
    if not carries:
        return plane, None
    return plane, np.concatenate(carries, axis=0)


def bitsliced_counts(masks: np.ndarray) -> np.ndarray:
    """Per-position 1-counts of a stack of packed masks, in digit planes.

    Args:
        masks: uint64 array ``(k, ..., words)`` of packed bit masks.

    Returns:
        uint64 array ``(depth, ..., words)``: plane ``j`` holds digit
        ``j`` of the per-position count, so position ``p`` of the batch
        was set in ``sum_j(plane[j] bit p) << j`` of the ``k`` masks.
        ``depth`` is exactly the number of digits needed for ``k``.
    """
    arr = np.asarray(masks, dtype=np.uint64)
    if arr.ndim < 2:
        raise ValueError(f"expected (k, ..., words) masks, got {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("cannot count an empty stack of masks")
    planes: list[np.ndarray] = []
    level: np.ndarray | None = arr
    while level is not None:
        plane, level = _reduce_plane(level)
        planes.append(plane)
    return np.stack(planes)


def planes_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Add two bit-sliced counts digit-wise (a packed ripple adder).

    Both inputs are ``(depth, ..., words)`` planes as produced by
    :func:`bitsliced_counts`; the sum is computed one digit deeper than
    the deeper input so the final carry can never be lost, then trailing
    all-zero planes are trimmed — repeated accumulation (the streaming
    prototype trainer) keeps ``O(log n)`` depth instead of growing by
    one per call.
    """
    a_arr = np.asarray(a, dtype=np.uint64)
    b_arr = np.asarray(b, dtype=np.uint64)
    if a_arr.shape[1:] != b_arr.shape[1:]:
        raise ValueError(
            f"plane shapes disagree: {a_arr.shape[1:]} vs {b_arr.shape[1:]}"
        )
    depth = max(a_arr.shape[0], b_arr.shape[0]) + 1
    out = np.zeros((depth,) + a_arr.shape[1:], dtype=np.uint64)
    carry = np.zeros(a_arr.shape[1:], dtype=np.uint64)
    zero = np.zeros(a_arr.shape[1:], dtype=np.uint64)
    for j in range(depth):
        x = a_arr[j] if j < a_arr.shape[0] else zero
        y = b_arr[j] if j < b_arr.shape[0] else zero
        out[j], carry = _carry_save_add(x, y, carry)
    top = depth
    while top > 1 and not out[top - 1].any():
        top -= 1
    return out[:top]


def planes_greater_than(planes: np.ndarray, threshold: int) -> np.ndarray:
    """Packed mask of positions whose bit-sliced count exceeds ``threshold``.

    The bitwise magnitude comparator of
    :meth:`BitslicedCounter.greater_than`, vectorised over any batch
    shape: ``planes`` is ``(depth, ..., words)`` and the result is
    ``(..., words)``.  Padding bits stay zero for ``threshold >= 0``.
    """
    arr = np.asarray(planes, dtype=np.uint64)
    if arr.ndim < 2:
        raise ValueError(f"expected (depth, ..., words) planes, got {arr.shape}")
    batch = arr.shape[1:]
    if threshold < 0:
        return np.full(batch, _ALL_ONES, dtype=np.uint64)
    if threshold >> arr.shape[0]:
        return np.zeros(batch, dtype=np.uint64)
    greater = np.zeros(batch, dtype=np.uint64)
    equal = np.full(batch, _ALL_ONES, dtype=np.uint64)
    for j in range(arr.shape[0] - 1, -1, -1):
        plane = arr[j]
        if (threshold >> j) & 1:
            equal &= plane
        else:
            greater |= equal & plane
            equal &= ~plane
    return greater


def planes_to_counts(planes: np.ndarray, dim: int) -> np.ndarray:
    """Decode digit planes into plain integer counts (test/debug path)."""
    arr = np.asarray(planes, dtype=np.uint64)
    total = np.zeros(arr.shape[1:-1] + (dim,), dtype=np.int64)
    for j in range(arr.shape[0]):
        total += unpack_bits(arr[j], dim).astype(np.int64) << j
    return total


def planes_from_counts(counts: np.ndarray, dim: int) -> np.ndarray:
    """Encode plain integer counts into digit planes.

    Inverse of :func:`planes_to_counts`: the streaming-state import hook
    of the packed temporal encoder, which checkpoints its per-block
    counts in the engine-independent integer form.  Depth is the minimum
    needed for the largest count (downstream plane arithmetic only
    depends on the decoded counts, so depth differences are harmless).

    Args:
        counts: Non-negative integer array ``(..., dim)``.
        dim: Number of counted positions (hypervector components).

    Returns:
        uint64 array ``(depth, ..., packed_words(dim))``.
    """
    arr = np.asarray(counts)
    if arr.ndim < 1 or arr.shape[-1] != dim:
        raise ValueError(f"expected (..., {dim}) counts, got {arr.shape}")
    arr = arr.astype(np.int64)
    if arr.size and int(arr.min()) < 0:
        raise ValueError("counts must be non-negative")
    depth = max(int(arr.max()).bit_length(), 1) if arr.size else 1
    return np.stack(
        [pack_bits(((arr >> j) & 1).astype(np.uint8)) for j in range(depth)]
    )


class BitslicedCounter:
    """Per-component counter over packed bit masks.

    Args:
        dim: Number of counted positions (hypervector components).
        capacity: Maximum number of masks that will be added; sets the
            register depth ``ceil(log2(capacity + 1))``.
    """

    def __init__(self, dim: int, capacity: int) -> None:
        if dim < 1 or capacity < 1:
            raise ValueError("dim and capacity must be >= 1")
        self.dim = dim
        self.capacity = capacity
        self.depth = max(1, int(np.ceil(np.log2(capacity + 1))))
        self._words = packed_words(dim)
        self._registers = np.zeros((self.depth, self._words), dtype=np.uint64)
        self._added = 0

    @property
    def n_added(self) -> int:
        """Number of masks accumulated so far."""
        return self._added

    def add(self, mask: np.ndarray) -> "BitslicedCounter":
        """Add one packed mask (uint64 array of ``packed_words(dim)``).

        Ripple-carry over the bit-sliced registers: digit j absorbs the
        carry with one XOR and regenerates it with one AND.
        """
        if self._added >= self.capacity:
            raise ValueError(f"counter capacity {self.capacity} exhausted")
        carry = np.asarray(mask, dtype=np.uint64)
        if carry.shape != (self._words,):
            raise ValueError(
                f"expected packed mask of {self._words} words, "
                f"got shape {carry.shape}"
            )
        carry = carry.copy()
        for register in self._registers:
            next_carry = register & carry
            register ^= carry
            carry = next_carry
            if not carry.any():
                break
        self._added += 1
        return self

    def counts(self) -> np.ndarray:
        """Per-position counts as plain integers (test/debug path)."""
        total = np.zeros(self.dim, dtype=np.int64)
        for j, register in enumerate(self._registers):
            total += unpack_bits(register, self.dim).astype(np.int64) << j
        return total

    def greater_than(self, threshold: int) -> np.ndarray:
        """Packed mask of positions where the count exceeds ``threshold``.

        A bitwise magnitude comparator from the most significant digit
        down: at each digit, positions still equal so far become
        *greater* when the counter has a 1 where the threshold has a 0.
        """
        if threshold < 0:
            return np.full(
                self._words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64
            )
        ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        greater = np.zeros(self._words, dtype=np.uint64)
        equal = np.full(self._words, ones, dtype=np.uint64)
        for j in range(self.depth - 1, -1, -1):
            register = self._registers[j]
            t_bit = (threshold >> j) & 1
            if t_bit == 0:
                greater |= equal & register
                equal &= ~register
            else:
                equal &= register
        # Thresholds at/above 2**depth can never be exceeded; positions
        # with equality all the way down are not greater.
        if threshold >> self.depth:
            return np.zeros(self._words, dtype=np.uint64)
        return greater

    def reset(self) -> None:
        """Clear the counter for reuse."""
        self._registers[...] = 0
        self._added = 0
