"""Bit-sliced counting over packed hypervectors.

The GPU encoding kernel (Fig. 2) never unpacks vectors: it XORs packed
words, transposes 32 x 32 bit tiles and popcounts, so the majority of
32 electrodes costs a handful of word operations.  This module is the
software analogue: a **carry-save bit-sliced counter** holds one packed
register per binary digit, so adding a d-bit mask costs
``O(log2(capacity))`` word operations on all d positions at once, and
thresholding (the majority test) is a bitwise magnitude comparator —
no unpacking anywhere.

Used by :class:`repro.hdc.spatial_packed.PackedSpatialEncoder`; the
plain integer-counter encoder remains the default (numpy's gather/sum
is faster for wide electrode counts), but this path is word-exact
against it and mirrors the embedded implementation's data layout.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.backend import packed_words, unpack_bits


class BitslicedCounter:
    """Per-component counter over packed bit masks.

    Args:
        dim: Number of counted positions (hypervector components).
        capacity: Maximum number of masks that will be added; sets the
            register depth ``ceil(log2(capacity + 1))``.
    """

    def __init__(self, dim: int, capacity: int) -> None:
        if dim < 1 or capacity < 1:
            raise ValueError("dim and capacity must be >= 1")
        self.dim = dim
        self.capacity = capacity
        self.depth = max(1, int(np.ceil(np.log2(capacity + 1))))
        self._words = packed_words(dim)
        self._registers = np.zeros((self.depth, self._words), dtype=np.uint64)
        self._added = 0

    @property
    def n_added(self) -> int:
        """Number of masks accumulated so far."""
        return self._added

    def add(self, mask: np.ndarray) -> "BitslicedCounter":
        """Add one packed mask (uint64 array of ``packed_words(dim)``).

        Ripple-carry over the bit-sliced registers: digit j absorbs the
        carry with one XOR and regenerates it with one AND.
        """
        if self._added >= self.capacity:
            raise ValueError(f"counter capacity {self.capacity} exhausted")
        carry = np.asarray(mask, dtype=np.uint64)
        if carry.shape != (self._words,):
            raise ValueError(
                f"expected packed mask of {self._words} words, "
                f"got shape {carry.shape}"
            )
        carry = carry.copy()
        for register in self._registers:
            next_carry = register & carry
            register ^= carry
            carry = next_carry
            if not carry.any():
                break
        self._added += 1
        return self

    def counts(self) -> np.ndarray:
        """Per-position counts as plain integers (test/debug path)."""
        total = np.zeros(self.dim, dtype=np.int64)
        for j, register in enumerate(self._registers):
            total += unpack_bits(register, self.dim).astype(np.int64) << j
        return total

    def greater_than(self, threshold: int) -> np.ndarray:
        """Packed mask of positions where the count exceeds ``threshold``.

        A bitwise magnitude comparator from the most significant digit
        down: at each digit, positions still equal so far become
        *greater* when the counter has a 1 where the threshold has a 0.
        """
        if threshold < 0:
            return np.full(
                self._words, np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64
            )
        ones = np.uint64(0xFFFFFFFFFFFFFFFF)
        greater = np.zeros(self._words, dtype=np.uint64)
        equal = np.full(self._words, ones, dtype=np.uint64)
        for j in range(self.depth - 1, -1, -1):
            register = self._registers[j]
            t_bit = (threshold >> j) & 1
            if t_bit == 0:
                greater |= equal & register
                equal &= ~register
            else:
                equal &= register
        # Thresholds at/above 2**depth can never be exceeded; positions
        # with equality all the way down are not greater.
        if threshold >> self.depth:
            return np.zeros(self._words, dtype=np.uint64)
        return greater

    def reset(self) -> None:
        """Clear the counter for reuse."""
        self._registers[...] = 0
        self._added = 0
