"""The ``packed-native`` engine: multithreaded, GIL-releasing kernels.

The two hot loops of the packed pipeline — the XOR+popcount sweep
behind :meth:`repro.hdc.associative.AssociativeMemory.classify_packed`
/ :func:`repro.hdc.associative.grouped_classify_packed`, and the
carry-save bundling tree of :mod:`repro.hdc.bitsliced` — are pure
NumPy everywhere else: single-threaded per process, so a shard worker
cannot scale past one core.  This module re-states both kernels in a
numba-compilable subset of Python and JIT-compiles them with
``@njit(parallel=True, nogil=True, cache=True)``: the sweep `prange`s
over query rows (per-thread argmin, same earliest-stored tie-break as
``np.argmin``), the bundling tree `prange`s over word columns (each
column ripples its own carry chain), and both release the GIL so
N shard workers x M threads is a real sizing knob.

numba is an *optional* accelerator.  This module is the only place in
the tree allowed to import it (enforced by ``repro lint`` rule
RPR010), and the import sits behind an availability guard: when numba
is absent the engine still registers — ``repro backends`` lists it
with ``available: no`` and the import error, ``auto`` skips it — and
every kernel falls back to a pure-Python twin of itself (``njit``
becomes the identity decorator, ``prange`` becomes ``range``).  The
fallback is far too slow to serve with, but it lets the bit-exactness
property suite exercise the exact kernel code on numba-free hosts;
set ``REPRO_NATIVE_PURE_PYTHON=1`` to make the engine constructible
there (testing/debug only — ``auto`` never resolves to it without
real numba).

Thread count is controlled by the ``REPRO_NATIVE_THREADS`` env knob
(0 = numba's default), read at engine construction and clamped to the
launch-time maximum; results are thread-count-invariant by
construction (each prange iteration owns its output rows/columns).
"""

from __future__ import annotations

import os

import numpy as np

from repro.hdc.associative import (
    AssociativeMemory,
    _validate_grouped,
)
from repro.hdc.bitsliced import plane_depth, planes_add, planes_greater_than
from repro.hdc.engine import (
    PACKED_NATIVE_ENGINE,
    EngineUnavailableError,
    PackedFusedEngine,
    register_engine,
)
from repro.hdc.item_memory import ItemMemory
from repro.hdc.spatial_packed import _CHUNK_WORDS, PackedSpatialEncoder
from repro.hdc.temporal_packed import PackedTemporalEncoder
from repro.signal.windows import WindowSpec

#: Env knob: worker thread count for the native kernels (0 = default).
NATIVE_THREADS_ENV = "REPRO_NATIVE_THREADS"

#: Env knob: allow constructing the engine on its pure-Python kernel
#: twins when numba is absent.  Testing/debug only — orders of
#: magnitude slower than ``packed-fused`` — so ``auto`` ignores it.
NATIVE_PURE_PYTHON_ENV = "REPRO_NATIVE_PURE_PYTHON"

_NUMBA_IMPORT_ERROR: str | None
try:  # the availability guard required by lint rule RPR010
    from numba import config as _numba_config
    from numba import get_num_threads as _get_num_threads
    from numba import njit, prange
    from numba import set_num_threads as _set_num_threads
except ImportError as exc:  # pragma: no cover - exercised via monkeypatch
    _NUMBA_IMPORT_ERROR = f"{exc}"
    _numba_config = None
    _get_num_threads = None
    _set_num_threads = None
    prange = range

    def njit(*args, **kwargs):
        """Identity decorator: keep the kernels runnable in pure Python."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(fn):
            return fn

        return wrap
else:
    _NUMBA_IMPORT_ERROR = None


def numba_available() -> bool:
    """Whether the real numba JIT backs the kernels in this process."""
    return _NUMBA_IMPORT_ERROR is None


def numba_unavailable_reason() -> str | None:
    """The numba import error message, or ``None`` when it imported."""
    return _NUMBA_IMPORT_ERROR


def pure_python_forced() -> bool:
    """Whether ``REPRO_NATIVE_PURE_PYTHON`` requests the fallback twins."""
    return os.environ.get(NATIVE_PURE_PYTHON_ENV, "") not in ("", "0")


def native_available() -> tuple[bool, str | None]:
    """Constructibility of the engine: ``(available, reason_if_not)``."""
    if numba_available() or pure_python_forced():
        return True, None
    return False, (
        f"numba import failed ({_NUMBA_IMPORT_ERROR}); install numba or "
        f"set {NATIVE_PURE_PYTHON_ENV}=1 for the slow pure-Python twins"
    )


# -- thread control -----------------------------------------------------


def requested_native_threads() -> int:
    """The ``REPRO_NATIVE_THREADS`` value (0 when unset = default).

    Raises:
        ValueError: When the variable is set but not a non-negative int.
    """
    raw = os.environ.get(NATIVE_THREADS_ENV, "").strip()
    if not raw:
        return 0
    try:
        n = int(raw)
    except ValueError:
        raise ValueError(
            f"{NATIVE_THREADS_ENV} must be a non-negative integer, "
            f"got {raw!r}"
        ) from None
    if n < 0:
        raise ValueError(
            f"{NATIVE_THREADS_ENV} must be a non-negative integer, got {n}"
        )
    return n


def apply_native_threads(n: int | None = None) -> int:
    """Set the kernel thread count, clamped to the launch-time maximum.

    Args:
        n: Requested threads; ``None`` reads :func:`requested_native_threads`
            and ``0`` keeps numba's current default.

    Returns:
        The effective thread count (1 in pure-Python mode).
    """
    if n is None:
        n = requested_native_threads()
    if not numba_available():
        return 1
    if n == 0:
        return int(_get_num_threads())
    # set_num_threads raises above the pool size fixed at numba's import;
    # clamping keeps "ask for 4 on a 1-core host" a no-op, not a crash.
    clamped = max(1, min(n, int(_numba_config.NUMBA_NUM_THREADS)))
    _set_num_threads(clamped)
    return clamped


def configure_native_threads(n: int) -> None:
    """Pin the thread knob process-wide (and for forked children).

    Writes ``REPRO_NATIVE_THREADS`` into the environment *before* worker
    processes are spawned — fork and spawn children both inherit it, so
    one call in the parent sizes every shard worker's kernel pool.
    """
    if n < 0:
        raise ValueError(f"native thread count must be >= 0, got {n}")
    os.environ[NATIVE_THREADS_ENV] = str(n)
    apply_native_threads(n)


# -- kernels ------------------------------------------------------------
#
# Written once in the numba subset and decorated below: under numba
# these compile to parallel, nogil machine code; without it they run
# as-is in pure Python (slow, but the same code path bit for bit).

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_M127 = np.uint64(0x7F)
_S1 = np.uint64(1)
_S2 = np.uint64(2)
_S4 = np.uint64(4)
_S8 = np.uint64(8)
_S16 = np.uint64(16)
_S32 = np.uint64(32)
_ZERO64 = np.uint64(0)
_ONES64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _popcount64(x):
    """SWAR popcount of one uint64 word (shift-fold, no multiply)."""
    x = x - ((x >> _S1) & _M1)
    x = (x & _M2) + ((x >> _S2) & _M2)
    x = (x + (x >> _S4)) & _M4
    x = x + (x >> _S8)
    x = x + (x >> _S16)
    x = x + (x >> _S32)
    return np.int64(x & _M127)


def _sweep_kernel(queries, protos, dists, best):
    """Blocked XOR+popcount sweep: every query row against every prototype.

    prange over query rows; each row computes its full distance vector
    and its argmin locally (strict ``<`` keeps the earliest-stored
    winner, matching ``np.argmin``), so rows never share mutable state
    and the result is thread-count-invariant.
    """
    n = queries.shape[0]
    c = protos.shape[0]
    w = queries.shape[1]
    for i in prange(n):
        acc = np.int64(0)
        for t in range(w):
            acc += _popcount64(queries[i, t] ^ protos[0, t])
        dists[i, 0] = acc
        best_d = acc
        best_j = 0
        for j in range(1, c):
            acc = np.int64(0)
            for t in range(w):
                acc += _popcount64(queries[i, t] ^ protos[j, t])
            dists[i, j] = acc
            if acc < best_d:
                best_d = acc
                best_j = j
        best[i] = best_j


def _grouped_sweep_kernel(queries, stack, owners, dists, best):
    """The cross-session sweep: each query row against its owner's block."""
    n = queries.shape[0]
    c = stack.shape[1]
    w = queries.shape[1]
    for i in prange(n):
        o = owners[i]
        acc = np.int64(0)
        for t in range(w):
            acc += _popcount64(queries[i, t] ^ stack[o, 0, t])
        dists[i, 0] = acc
        best_d = acc
        best_j = 0
        for j in range(1, c):
            acc = np.int64(0)
            for t in range(w):
                acc += _popcount64(queries[i, t] ^ stack[o, j, t])
            dists[i, j] = acc
            if acc < best_d:
                best_d = acc
                best_j = j
        best[i] = best_j


def _count_kernel(masks, planes):
    """Carry-save bundling tree, prange over word columns.

    ``masks`` is ``(k, cols)``; ``planes`` is ``(depth, cols)`` and
    must arrive zeroed.  Each column ripples its own carry chain
    (digit j absorbs the carry with one XOR, regenerates it with one
    AND — :meth:`repro.hdc.bitsliced.BitslicedCounter.add` per
    column), so columns are independent and the planes are bit-exact
    against :func:`repro.hdc.bitsliced.bitsliced_counts`.
    """
    k = masks.shape[0]
    cols = masks.shape[1]
    depth = planes.shape[0]
    for col in prange(cols):
        for t in range(k):
            carry = masks[t, col]
            j = 0
            while carry != _ZERO64 and j < depth:
                regenerated = planes[j, col] & carry
                planes[j, col] = planes[j, col] ^ carry
                carry = regenerated
                j += 1


def _bundle_kernel(masks, planes, threshold, out):
    """Fused majority: carry-save counts plus the magnitude comparator.

    Same column decomposition as :func:`_count_kernel`, with the
    per-column ``count > threshold`` comparator
    (:func:`repro.hdc.bitsliced.planes_greater_than`) run in place, so
    the spatial majority never leaves the kernel.
    """
    k = masks.shape[0]
    cols = masks.shape[1]
    depth = planes.shape[0]
    for col in prange(cols):
        for t in range(k):
            carry = masks[t, col]
            j = 0
            while carry != _ZERO64 and j < depth:
                regenerated = planes[j, col] & carry
                planes[j, col] = planes[j, col] ^ carry
                carry = regenerated
                j += 1
        greater = _ZERO64
        equal = _ONES64
        for j in range(depth - 1, -1, -1):
            register = planes[j, col]
            if (threshold >> j) & 1 == 1:
                equal = equal & register
            else:
                greater = greater | (equal & register)
                equal = equal & ~register
        out[col] = greater


if numba_available():
    _popcount64 = njit(cache=True, inline="always")(_popcount64)
    _jit = njit(parallel=True, nogil=True, cache=True)
    _sweep_kernel = _jit(_sweep_kernel)
    _grouped_sweep_kernel = _jit(_grouped_sweep_kernel)
    _count_kernel = _jit(_count_kernel)
    _bundle_kernel = _jit(_bundle_kernel)


# -- kernel wrappers (numpy in, numpy out) ------------------------------


def sweep_classify_packed(
    queries: np.ndarray, protos: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Native twin of the batched XOR+popcount prototype sweep.

    Args:
        queries: uint64 array ``(n, words)``.
        protos: uint64 array ``(n_classes, words)``, ``n_classes >= 1``.

    Returns:
        ``(argmin, distances)``: int64 ``(n,)`` prototype indices (ties
        to the earliest-stored row) and int64 ``(n, n_classes)``.
    """
    q = np.ascontiguousarray(np.asarray(queries, dtype=np.uint64))
    p = np.ascontiguousarray(np.asarray(protos, dtype=np.uint64))
    if q.ndim != 2 or p.ndim != 2 or q.shape[1] != p.shape[1]:
        raise ValueError(
            f"need (n, words) queries and (c, words) prototypes, got "
            f"{q.shape} and {p.shape}"
        )
    if p.shape[0] == 0:
        raise ValueError("need at least one prototype")
    dists = np.empty((q.shape[0], p.shape[0]), dtype=np.int64)
    best = np.empty(q.shape[0], dtype=np.int64)
    _sweep_kernel(q, p, dists, best)
    return best, dists


def grouped_classify_packed_native(
    queries: np.ndarray,
    prototype_stack: np.ndarray,
    owners: np.ndarray,
    label_table: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Native twin of :func:`repro.hdc.associative.grouped_classify_packed`.

    Same validation, same earliest-stored tie-break, same return shapes;
    the sweep itself pranges over query rows instead of materialising
    the broadcast XOR.
    """
    query_arr, stack, owner_arr, table = _validate_grouped(
        queries, prototype_stack, owners, label_table
    )
    if stack.shape[1] == 0:
        raise ValueError("prototype stack has zero classes")
    q = np.ascontiguousarray(query_arr)
    s = np.ascontiguousarray(stack)
    owners64 = np.ascontiguousarray(owner_arr.astype(np.int64, copy=False))
    dists = np.empty((q.shape[0], s.shape[1]), dtype=np.int64)
    best = np.empty(q.shape[0], dtype=np.int64)
    _grouped_sweep_kernel(q, s, owners64, dists, best)
    return table[owner_arr, best], dists


def native_bitsliced_counts(masks: np.ndarray) -> np.ndarray:
    """Native twin of :func:`repro.hdc.bitsliced.bitsliced_counts`."""
    arr = np.ascontiguousarray(np.asarray(masks, dtype=np.uint64))
    if arr.ndim < 2:
        raise ValueError(f"expected (k, ..., words) masks, got {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("cannot count an empty stack of masks")
    depth = plane_depth(arr.shape[0])
    flat = arr.reshape(arr.shape[0], -1)
    planes = np.zeros((depth, flat.shape[1]), dtype=np.uint64)
    _count_kernel(flat, planes)
    return planes.reshape((depth,) + arr.shape[1:])


def native_bundle_exceeds(masks: np.ndarray, threshold: int) -> np.ndarray:
    """Fused per-position majority: packed mask of counts > ``threshold``.

    Equivalent to ``planes_greater_than(bitsliced_counts(masks), t)``
    without materialising the planes outside the kernel scratch.
    """
    arr = np.ascontiguousarray(np.asarray(masks, dtype=np.uint64))
    if arr.ndim < 2:
        raise ValueError(f"expected (k, ..., words) masks, got {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("cannot bundle an empty stack of masks")
    if threshold < 0:
        return np.full(arr.shape[1:], _ONES64, dtype=np.uint64)
    depth = plane_depth(arr.shape[0])
    if threshold >> depth:
        return np.zeros(arr.shape[1:], dtype=np.uint64)
    flat = arr.reshape(arr.shape[0], -1)
    planes = np.zeros((depth, flat.shape[1]), dtype=np.uint64)
    out = np.empty(flat.shape[1], dtype=np.uint64)
    _bundle_kernel(flat, planes, np.int64(threshold), out)
    return out.reshape(arr.shape[1:])


# -- encoders and the engine --------------------------------------------


class NativeSpatialEncoder(PackedSpatialEncoder):
    """Packed spatial encoder whose majority runs in the native kernel."""

    def encode_packed(self, codes: np.ndarray) -> np.ndarray:
        arr = np.asarray(codes)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.n_electrodes:
            raise ValueError(
                f"expected (n_samples, {self.n_electrodes}), got {arr.shape}"
            )
        n_samples = arr.shape[0]
        out = np.empty((n_samples, self.words), dtype=np.uint64)
        if n_samples == 0:
            return out
        if arr.min() < 0 or arr.max() >= self.n_codes:
            raise ValueError(f"code out of range [0, {self.n_codes})")
        chunk = max(1, _CHUNK_WORDS // (self.n_electrodes * self.words))
        electrode_index = np.arange(self.n_electrodes)
        for start in range(0, n_samples, chunk):
            stop = min(start + chunk, n_samples)
            masks = self._table[electrode_index, arr[start:stop]]
            # Electrode-major (n_electrodes, samples * words): the kernel
            # reduces axis 0 per word column, fusing count and majority.
            flat = np.ascontiguousarray(masks.swapaxes(0, 1)).reshape(
                self.n_electrodes, -1
            )
            out[start:stop] = native_bundle_exceeds(
                flat, self.n_electrodes // 2
            ).reshape(stop - start, self.words)
        return out


class NativeTemporalEncoder(PackedTemporalEncoder):
    """Packed temporal encoder over the native bundling tree.

    Per-block digit planes come from the native carry-save kernel; the
    cheap cross-block combine (``blocks_per_window`` plane adds on
    ``(depth, words)`` arrays) and the checkpoint import/export stay on
    the shared numpy path, so streaming state remains engine-independent.
    """

    spatial: NativeSpatialEncoder

    def _consume_block(self, block_codes: np.ndarray) -> np.ndarray | None:
        s_packed = self.spatial.encode_packed(block_codes)
        self._block_planes.append(native_bitsliced_counts(s_packed))
        if len(self._block_planes) < self.blocks_per_window:
            return None
        window_planes = self._block_planes[0]
        for planes in list(self._block_planes)[1:]:
            window_planes = planes_add(window_planes, planes)
        return planes_greater_than(
            window_planes, self.spec.window_samples // 2
        )


@register_engine
class PackedNativeEngine(PackedFusedEngine):
    """The ``packed-fused`` engine with both hot kernels JIT-parallelised.

    Inherits the fused block/scratch discipline (block sweep bounded by
    the window chunk, no H materialisation); replaces the sweep and the
    bundling tree with the nogil prange kernels above and routes the
    cross-session grouped sweep through its native twin.
    """

    name = PACKED_NATIVE_ENGINE
    summary = (
        "fused packed pipeline with numba-parallel nogil XOR+popcount "
        "sweep and carry-save bundling kernels"
    )
    grouped_kernel = staticmethod(grouped_classify_packed_native)

    def __init__(
        self,
        code_memory: ItemMemory,
        electrode_memory: ItemMemory,
        spec: WindowSpec,
    ) -> None:
        ok, why = native_available()
        if not ok:
            raise EngineUnavailableError(
                f"compute engine {self.name!r} is unavailable: {why}"
            )
        super().__init__(code_memory, electrode_memory, spec)
        #: Effective kernel thread count (REPRO_NATIVE_THREADS, clamped).
        self.threads = apply_native_threads()

    @classmethod
    def available(cls) -> tuple[bool, str | None]:
        return native_available()

    @classmethod
    def auto_eligible(cls) -> bool:
        # Without real numba the pure-Python twins are orders of
        # magnitude slower than packed-fused: never auto-select them.
        return numba_available()

    def _build_spatial(self, code_memory, electrode_memory):
        return NativeSpatialEncoder(code_memory, electrode_memory)

    def temporal_encoder(self) -> NativeTemporalEncoder:
        return NativeTemporalEncoder(self.spatial, self.spec)

    def _fused_query(
        self, memory: AssociativeMemory, arr: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One kernel call for any batch size, no scratch needed."""
        block, label_table = memory.packed_block()
        best, dists = sweep_classify_packed(arr, block)
        return label_table[best], dists
