"""Spatial record encoder: fuse the LBP codes of all electrodes.

For every sampling point the encoder binds each electrode-name vector with
the vector of the LBP code that electrode currently shows, and bundles the
bound vectors across electrodes (Sec. III-B):

    S = [ E_1 xor C_i(1) + E_2 xor C_i(2) + ... + E_n xor C_i(n) ]

``S`` holographically represents the set of (electrode, code) pairs of one
sample.  The implementation gathers precomputed bound vectors from a
``(n_electrodes, n_codes, d)`` table and accumulates integer counts, which
is exactly the XOR / transpose / popcount dataflow of the paper's encoding
kernel (Fig. 2) restated for a CPU.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.item_memory import ItemMemory, bound_table
from repro.hdc.ops import majority_from_counts


class SpatialEncoder:
    """Encodes per-sample electrode codes into spatial records ``S``.

    Args:
        code_memory: Item memory of the LBP codes (IM1; 64 entries for
            6-bit codes).
        electrode_memory: Item memory of the electrode names (IM2).
    """

    def __init__(
        self, code_memory: ItemMemory, electrode_memory: ItemMemory
    ) -> None:
        if code_memory.dim != electrode_memory.dim:
            raise ValueError(
                "item memories must share a dimension, got "
                f"{code_memory.dim} and {electrode_memory.dim}"
            )
        self.code_memory = code_memory
        self.electrode_memory = electrode_memory
        self.dim = code_memory.dim
        self.n_electrodes = electrode_memory.n_items
        self.n_codes = code_memory.n_items
        self._table = bound_table(code_memory, electrode_memory)

    def _validate_codes(self, codes: np.ndarray) -> np.ndarray:
        arr = np.asarray(codes)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.n_electrodes:
            raise ValueError(
                f"expected (n_samples, {self.n_electrodes}) codes, "
                f"got shape {np.asarray(codes).shape}"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_codes):
            raise ValueError(
                f"code out of range [0, {self.n_codes}) in input"
            )
        return arr

    def counts(self, codes: np.ndarray) -> np.ndarray:
        """Per-component 1-counts of the electrode bundle, before majority.

        Args:
            codes: Integer array ``(n_samples, n_electrodes)`` (a single
                sample may be passed as ``(n_electrodes,)``).

        Returns:
            int16 array ``(n_samples, d)``: component ``k`` of row ``t``
            counts how many electrodes contributed a 1 at position ``k``.
        """
        arr = self._validate_codes(codes)
        n_samples = arr.shape[0]
        acc = np.zeros((n_samples, self.dim), dtype=np.int16)
        # One gather-and-add per electrode; each electrode's 64 x d slice of
        # the bound table is small enough to stay cache resident.
        for j in range(self.n_electrodes):
            np.add(acc, self._table[j][arr[:, j]], out=acc, casting="unsafe")
        return acc

    def encode(self, codes: np.ndarray) -> np.ndarray:
        """Spatial records ``S`` for a batch of samples.

        Args:
            codes: Integer array ``(n_samples, n_electrodes)``.

        Returns:
            uint8 array ``(n_samples, d)`` of majority-thresholded records.
        """
        return majority_from_counts(self.counts(codes), self.n_electrodes)

    def encode_sample(self, codes: np.ndarray) -> np.ndarray:
        """Spatial record of a single sample, shape ``(d,)``."""
        return self.encode(np.asarray(codes)[None, :])[0]
