"""Bit-level backend for binary hypervectors.

Hypervectors live in two forms:

* unpacked: ``uint8`` arrays of 0/1, shape ``(..., d)``;
* packed: ``uint64`` arrays, shape ``(..., ceil(d / 64))``, component ``k``
  stored in word ``k // 64`` at bit ``k % 64`` (LSB first).  Padding bits
  beyond ``d`` are always zero, which keeps XOR/popcount exact.

Packed form mirrors the word-packing of the paper's GPU kernels (which use
32-bit words); 64-bit words simply halve the word count on a CPU.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64

_POPCOUNT_TABLE = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def _popcount_lookup(words: np.ndarray) -> np.ndarray:
    """Byte-lookup per-word popcount: the numpy < 2.0 fallback path.

    Always defined (not only on old numpy) so the parity suite can run
    the packed backend through it on any numpy version — see
    ``tests/hdc/test_popcount_fallback.py``.
    """
    arr = np.ascontiguousarray(np.asarray(words, dtype=np.uint64))
    as_bytes = arr.view(np.uint8).reshape(arr.shape + (8,))
    return _POPCOUNT_TABLE[as_bytes].sum(axis=-1, dtype=np.uint8)


if hasattr(np, "bitwise_count"):
    _popcount = np.bitwise_count
else:  # pragma: no cover - selected only on numpy < 2.0
    _popcount = _popcount_lookup


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-word population count of a uint64 array.

    Uses ``numpy.bitwise_count`` when available (numpy >= 2.0) and a
    byte-lookup fallback otherwise, so the packed backend works on any
    numpy the package's floor admits.
    """
    return _popcount(np.asarray(words, dtype=np.uint64))


def packed_words(dim: int) -> int:
    """Number of uint64 words needed for ``dim`` components."""
    if dim < 1:
        raise ValueError(f"dimension must be >= 1, got {dim}")
    return (dim + WORD_BITS - 1) // WORD_BITS


def random_bits(
    shape: tuple[int, ...] | int, rng: np.random.Generator
) -> np.ndarray:
    """I.i.d. equiprobable bits as a uint8 array of the given shape.

    This is the atomic-vector distribution of the paper: binomial with
    p = 0.5 per component.

    Args:
        shape: Output shape (int or tuple), typically ``(..., d)``.
        rng: Numpy generator owning the randomness (callers derive it
            from the config seed, keeping models reproducible).

    Returns:
        uint8 array of the requested shape with values in {0, 1}.
    """
    return rng.integers(0, 2, size=shape, dtype=np.uint8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack 0/1 components along the last axis into uint64 words.

    Args:
        bits: Array ``(..., d)`` of 0/1 values (any integer/bool dtype).

    Returns:
        uint64 array ``(..., packed_words(d))``; padding bits are zero.
    """
    arr = np.asarray(bits)
    if arr.ndim == 0:
        raise ValueError("cannot pack a scalar")
    dim = arr.shape[-1]
    n_words = packed_words(dim)
    pad = n_words * WORD_BITS - dim
    if pad:
        pad_widths = [(0, 0)] * (arr.ndim - 1) + [(0, pad)]
        arr = np.pad(arr, pad_widths)
    # packbits is MSB-first per byte; bitorder="little" gives LSB-first,
    # matching the word layout documented above once viewed as uint64.
    packed_u8 = np.packbits(arr.astype(np.uint8), axis=-1, bitorder="little")
    packed_u8 = np.ascontiguousarray(packed_u8)
    return packed_u8.view(np.uint64)


def unpack_bits(words: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`.

    Args:
        words: uint64 array ``(..., packed_words(dim))``.
        dim: Number of valid components to recover.

    Returns:
        uint8 array ``(..., dim)`` of 0/1 values.
    """
    arr = np.asarray(words, dtype=np.uint64)
    if arr.shape[-1] != packed_words(dim):
        raise ValueError(
            f"expected {packed_words(dim)} words for dim={dim}, "
            f"got {arr.shape[-1]}"
        )
    as_bytes = arr.view(np.uint8).reshape(arr.shape[:-1] + (arr.shape[-1] * 8,))
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :dim]


def hamming_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamming distance between unpacked hypervectors.

    Broadcasts over leading axes; the last axis is the component axis.
    Returns an int64 array (0-d for two single vectors).
    """
    a_arr = np.asarray(a)
    b_arr = np.asarray(b)
    if a_arr.shape[-1] != b_arr.shape[-1]:
        raise ValueError(
            f"dimension mismatch: {a_arr.shape[-1]} vs {b_arr.shape[-1]}"
        )
    return np.count_nonzero(a_arr != b_arr, axis=-1)


def hamming_distance_packed(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamming distance between packed hypervectors (XOR + popcount).

    Both inputs are uint64 arrays whose last axis is the word axis;
    broadcasting applies to leading axes.  Because padding bits are zero in
    both operands they never contribute to the count.
    """
    a_arr = np.asarray(a, dtype=np.uint64)
    b_arr = np.asarray(b, dtype=np.uint64)
    if a_arr.shape[-1] != b_arr.shape[-1]:
        raise ValueError(
            f"word-count mismatch: {a_arr.shape[-1]} vs {b_arr.shape[-1]}"
        )
    return _popcount(a_arr ^ b_arr).sum(axis=-1, dtype=np.int64)


def _shift_up(words: np.ndarray, shift: int, dim: int) -> np.ndarray:
    """Logical shift of the d-bit field toward higher component indices.

    Bits shifted past ``dim`` are dropped; vacated low bits are zero.
    """
    n_words = words.shape[-1]
    shift_words, shift_bits = divmod(shift, WORD_BITS)
    out = np.zeros_like(words)
    kept = n_words - shift_words
    if shift_bits == 0:
        out[..., shift_words:] = words[..., :kept]
    else:
        low = np.uint64(shift_bits)
        high = np.uint64(WORD_BITS - shift_bits)
        out[..., shift_words:] = words[..., :kept] << low
        out[..., shift_words + 1 :] |= words[..., : kept - 1] >> high
    tail = dim - (n_words - 1) * WORD_BITS
    if tail < WORD_BITS:
        out[..., -1] &= np.uint64((1 << tail) - 1)
    return out


def _shift_down(words: np.ndarray, shift: int) -> np.ndarray:
    """Logical shift of the d-bit field toward lower component indices."""
    n_words = words.shape[-1]
    shift_words, shift_bits = divmod(shift, WORD_BITS)
    out = np.zeros_like(words)
    kept = n_words - shift_words
    if shift_bits == 0:
        out[..., :kept] = words[..., shift_words:]
    else:
        low = np.uint64(shift_bits)
        high = np.uint64(WORD_BITS - shift_bits)
        out[..., :kept] = words[..., shift_words:] >> low
        out[..., : kept - 1] |= words[..., shift_words + 1 :] << high
    return out


def permute_packed(words: np.ndarray, dim: int, shift: int = 1) -> np.ndarray:
    """Cyclic permutation of packed hypervectors without unpacking.

    Word-wise shifts with cross-word bit carries replace ``np.roll`` on
    the unpacked form: ``unpack_bits(permute_packed(pack_bits(v), d, s),
    d)`` equals ``np.roll(v, s)`` for any 0/1 vector ``v`` of length
    ``d``, including dimensions that are not word multiples (the padding
    bits of the top word stay zero).

    Args:
        words: uint64 array ``(..., packed_words(dim))``.
        dim: Number of valid components.
        shift: Signed rotation amount (positive moves components toward
            higher indices, matching :func:`repro.hdc.ops.permute`).

    Returns:
        A new uint64 array of the same shape.
    """
    arr = np.asarray(words, dtype=np.uint64)
    if arr.shape[-1] != packed_words(dim):
        raise ValueError(
            f"expected {packed_words(dim)} words for dim={dim}, "
            f"got {arr.shape[-1]}"
        )
    offset = shift % dim
    if offset == 0:
        return arr.copy()
    return _shift_up(arr, offset, dim) | _shift_down(arr, dim - offset)
