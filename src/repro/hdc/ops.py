"""HD arithmetic: binding, bundling, permutation, similarity.

The paper uses exactly two combining operations (Sec. II-B):

* **binding** — componentwise XOR; produces a vector dissimilar to its
  inputs, used to pair an electrode-name vector with an LBP-code vector;
* **bundling** — componentwise majority; produces a vector similar to its
  inputs, used to superpose the per-electrode bound vectors (the spatial
  record ``S``) and the per-sample records over time (the histogram
  vector ``H``).

The majority convention follows the paper verbatim: the result component
is 0 when at least half of the ``k`` inputs are 0, i.e. 1 only when
*strictly more* than ``k // 2`` inputs are 1 (ties on an even number of
inputs break to 0).
"""

from __future__ import annotations

import numpy as np


def bind(*vectors: np.ndarray) -> np.ndarray:
    """Bind hypervectors by componentwise XOR.

    Accepts two or more unpacked (or packed — XOR commutes with packing)
    vectors and reduces them left to right.  Binding is associative,
    commutative, and self-inverse: ``bind(a, bind(a, b)) == b``.

    Args:
        *vectors: Two or more arrays of identical shape ``(..., d)``
            (unpacked 0/1) or ``(..., words)`` (packed uint64).

    Returns:
        Array of the common shape, the XOR reduction.
    """
    if len(vectors) < 2:
        raise ValueError("bind needs at least two vectors")
    out = np.bitwise_xor(vectors[0], vectors[1])
    for vec in vectors[2:]:
        out = np.bitwise_xor(out, vec)
    return out


def majority_from_counts(counts: np.ndarray, k: int) -> np.ndarray:
    """Binarise per-component 1-counts of ``k`` bundled inputs.

    Args:
        counts: Integer array of per-component counts in ``[0, k]``.
        k: Number of bundled inputs.

    Returns:
        uint8 array: 1 where strictly more than ``k // 2`` inputs were 1.
    """
    if k < 1:
        raise ValueError(f"bundle size must be >= 1, got {k}")
    return (np.asarray(counts) > (k // 2)).astype(np.uint8)


def bundle(vectors: np.ndarray | list[np.ndarray]) -> np.ndarray:
    """Bundle unpacked hypervectors by componentwise majority.

    Args:
        vectors: Array ``(k, d)`` (or a list of ``k`` arrays ``(d,)``) of
            0/1 components.

    Returns:
        uint8 array ``(d,)``, the thresholded sum.
    """
    arr = np.asarray(vectors)
    if arr.ndim != 2:
        raise ValueError(f"expected (k, d) stack of vectors, got {arr.shape}")
    k = arr.shape[0]
    counts = arr.sum(axis=0, dtype=np.int64)
    return majority_from_counts(counts, k)


def permute(vector: np.ndarray, shift: int = 1) -> np.ndarray:
    """Cyclically permute an unpacked hypervector.

    Permutation generates a vector nearly orthogonal to its input and is
    the standard HD mechanism for encoding sequence position.  Laelaps
    itself does not need it (the LBP code already encodes local order) but
    it is part of the substrate's algebra and used in tests.

    Args:
        vector: Array ``(..., d)`` of 0/1 components.
        shift: Signed rotation amount along the last axis (positive
            moves components toward higher indices).

    Returns:
        The rolled array (same shape); see
        :func:`repro.hdc.backend.permute_packed` for the packed twin.
    """
    arr = np.asarray(vector)
    return np.roll(arr, shift, axis=-1)


def normalized_hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamming distance divided by the dimension, in ``[0, 1]``.

    Random unrelated hypervectors concentrate tightly around 0.5.
    """
    a_arr = np.asarray(a)
    b_arr = np.asarray(b)
    if a_arr.shape[-1] != b_arr.shape[-1]:
        raise ValueError(
            f"dimension mismatch: {a_arr.shape[-1]} vs {b_arr.shape[-1]}"
        )
    dim = a_arr.shape[-1]
    return np.count_nonzero(a_arr != b_arr, axis=-1) / dim


class BundleAccumulator:
    """Streaming bundler: add unpacked vectors one batch at a time.

    Keeps exact integer per-component counters so the final majority is
    identical to materialising all inputs at once — this is how prototype
    vectors are trained from long H streams without holding them in memory.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        self.dim = dim
        self._counts = np.zeros(dim, dtype=np.int64)
        self._n = 0

    @property
    def count(self) -> int:
        """Number of vectors bundled so far."""
        return self._n

    @property
    def counts(self) -> np.ndarray:
        """Per-component 1-counts accumulated so far (read-only copy)."""
        return self._counts.copy()

    def add(self, vectors: np.ndarray) -> "BundleAccumulator":
        """Add one vector ``(d,)`` or a batch ``(k, d)``; returns self."""
        arr = np.asarray(vectors)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise ValueError(
                f"expected (k, {self.dim}) batch, got shape {arr.shape}"
            )
        self._counts += arr.sum(axis=0, dtype=np.int64)
        self._n += arr.shape[0]
        return self

    def finalize(self) -> np.ndarray:
        """Majority-threshold the accumulated counts into a uint8 vector."""
        if self._n == 0:
            raise ValueError("cannot finalize an empty bundle")
        return majority_from_counts(self._counts, self._n)
