"""Module base class, parameters, and structural modules."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor with its gradient accumulator.

    Attributes:
        data: The parameter values (float64 ndarray).
        grad: Gradient of the loss w.r.t. ``data``; zeroed by
            ``Module.zero_grad`` and accumulated by backward passes.
        name: Optional identifier for debugging.
    """

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the parameter tensor."""
        return self.data.shape

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Module:
    """Base class: owns parameters, submodules and a training flag.

    Subclasses implement ``forward`` (caching what backward needs) and
    ``backward`` (returning the gradient w.r.t. the forward input and
    accumulating parameter gradients).
    """

    def __init__(self) -> None:
        self.training = True

    # -- structure ------------------------------------------------------

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its submodules."""
        found: list[Parameter] = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                found.append(value)
            elif isinstance(value, Module):
                found.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        found.extend(item.parameters())
        return found

    def zero_grad(self) -> None:
        """Reset every parameter gradient to zero."""
        for param in self.parameters():
            param.grad[...] = 0.0

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. Dropout)."""
        self.training = mode
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value.train(mode)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.train(mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.data.size for p in self.parameters())

    # -- computation ------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the module output (must cache for backward)."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``dL/d(output)`` to ``dL/d(input)``."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for module in self.modules:
            out = module.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad


class Flatten(Module):
    """Flatten all axes except the batch axis."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    Args:
        rate: Probability of zeroing an activation during training.
        seed: Seed of the private mask generator (deterministic training).
    """

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
