"""Loss functions returning ``(loss, grad_wrt_logits)``."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilised."""
    arr = np.asarray(logits, dtype=np.float64)
    shifted = arr - arr.max(axis=1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over a batch.

    Args:
        logits: ``(batch, n_classes)`` raw scores.
        targets: ``(batch,)`` integer class labels.

    Returns:
        ``(loss, grad)`` with ``grad`` already averaged over the batch.
    """
    arr = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(targets)
    if arr.ndim != 2 or labels.ndim != 1 or arr.shape[0] != labels.shape[0]:
        raise ValueError(
            f"shape mismatch: logits {arr.shape}, targets {labels.shape}"
        )
    batch = arr.shape[0]
    probs = softmax(arr)
    eps = 1e-12
    loss = float(
        -np.log(probs[np.arange(batch), labels] + eps).mean()
    )
    grad = probs
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


def hinge_loss(
    scores: np.ndarray, targets_pm1: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean binary hinge loss ``max(0, 1 - y * s)``.

    Args:
        scores: ``(batch,)`` real-valued margins.
        targets_pm1: ``(batch,)`` labels in ``{-1, +1}``.

    Returns:
        ``(loss, grad_wrt_scores)``, gradient averaged over the batch.
    """
    s = np.asarray(scores, dtype=np.float64)
    y = np.asarray(targets_pm1, dtype=np.float64)
    if s.shape != y.shape or s.ndim != 1:
        raise ValueError(f"shape mismatch: {s.shape} vs {y.shape}")
    margins = 1.0 - y * s
    active = margins > 0
    loss = float(np.where(active, margins, 0.0).mean())
    grad = np.where(active, -y, 0.0) / s.shape[0]
    return loss, grad
