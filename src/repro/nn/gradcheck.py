"""Numerical gradient checking for modules and losses.

Every layer's backward pass is verified in the test suite by comparing
analytic gradients (both w.r.t. the input and every parameter) against
central finite differences of a scalarised forward pass.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f(x)
        x[idx] = orig - eps
        minus = f(x)
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def gradient_check(
    module: Module,
    x: np.ndarray,
    eps: float = 1e-6,
    tol: float = 1e-5,
    seed: int = 0,
) -> dict[str, float]:
    """Check a module's input and parameter gradients.

    The forward output is scalarised by a fixed random projection so the
    whole Jacobian is exercised.  Returns the maximum relative error per
    checked tensor; raises ``AssertionError`` when any exceeds ``tol``.
    """
    module.train(False)  # dropout etc. must be deterministic
    rng = np.random.default_rng(seed)
    x = np.asarray(x, dtype=np.float64).copy()
    projection = rng.standard_normal(module.forward(x).shape)

    def scalar_forward(_: np.ndarray) -> float:
        return float((module.forward(x) * projection).sum())

    # Analytic gradients.
    module.zero_grad()
    module.forward(x)
    analytic_input = module.backward(projection.copy())

    errors: dict[str, float] = {}

    def rel_error(a: np.ndarray, b: np.ndarray) -> float:
        denominator = max(1e-8, float(np.abs(a).max()), float(np.abs(b).max()))
        return float(np.abs(a - b).max()) / denominator

    numeric_input = numerical_gradient(scalar_forward, x, eps)
    errors["input"] = rel_error(analytic_input, numeric_input)

    for k, param in enumerate(module.parameters()):
        analytic = param.grad.copy()

        def scalar_param(_: np.ndarray) -> float:
            return float((module.forward(x) * projection).sum())

        numeric = numerical_gradient(scalar_param, param.data, eps)
        errors[f"param{k}({param.name})"] = rel_error(analytic, numeric)

    failures = {k: v for k, v in errors.items() if v > tol}
    if failures:
        raise AssertionError(f"gradient check failed: {failures}")
    return errors
