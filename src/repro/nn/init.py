"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def xavier_init(
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (tanh/sigmoid networks)."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_init(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He normal initialisation (ReLU networks)."""
    return rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)
