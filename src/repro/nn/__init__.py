"""A small from-scratch neural-network framework (numpy only).

The paper's deep-learning baselines (STFT+CNN [Truong et al. 2018] and
LSTM [Hussein et al. 2018]) were implemented with Keras/cuDNN; no
deep-learning framework is available in this environment, so this package
provides the required building blocks with explicit forward/backward
passes:

* layers: :class:`Linear`, :class:`Conv2d`, :class:`MaxPool2d`,
  :class:`LSTM`, activations, :class:`Dropout`, :class:`Flatten`;
* losses: softmax cross-entropy, hinge;
* optimisers: SGD (with momentum), Adam;
* :func:`repro.nn.gradcheck.gradient_check` for verifying every layer
  against numerical gradients (used heavily by the test suite).

The design is deliberately minimal: a :class:`Module` owns parameters and
caches whatever its backward pass needs; ``Sequential`` chains modules.
There is no autograd graph — each module implements its own ``backward``.
"""

from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.conv import Conv2d
from repro.nn.init import he_init, xavier_init
from repro.nn.linear import Linear
from repro.nn.losses import hinge_loss, softmax_cross_entropy
from repro.nn.module import Dropout, Flatten, Module, Parameter, Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.pooling import GlobalAveragePool2d, MaxPool2d
from repro.nn.rnn import LSTM, LSTMCell

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Flatten",
    "Dropout",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "GlobalAveragePool2d",
    "LSTM",
    "LSTMCell",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "softmax_cross_entropy",
    "hinge_loss",
    "SGD",
    "Adam",
    "he_init",
    "xavier_init",
]
