"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W + b``.

    Args:
        in_features: Input dimension.
        out_features: Output dimension.
        seed: Seed for He initialisation.
        bias: Include the additive bias term.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        seed: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be >= 1")
        rng = np.random.default_rng(seed)
        self.weight = Parameter(
            he_init((in_features, out_features), in_features, rng), "weight"
        )
        self.bias = (
            Parameter(np.zeros(out_features), "bias") if bias else None
        )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"expected (batch, {self.weight.shape[0]}), got {arr.shape}"
            )
        self._x = arr
        out = arr @ self.weight.data
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad_out, dtype=np.float64)
        self.weight.grad += self._x.T @ grad
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.data.T
