"""2-D convolution via im2col."""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_init
from repro.nn.module import Module, Parameter


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into ``(N * oh * ow, C * kh * kw)`` patches."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (n, c, oh, ow, kh, kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * oh * ow, c * kh * kw
    )
    return np.ascontiguousarray(cols), oh, ow


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Fold patch gradients back onto the (padded) input, then unpad."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ] += cols6[:, :, :, :, i, j]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2d(Module):
    """2-D convolution over ``(batch, channels, height, width)`` inputs.

    Args:
        in_channels: Input channel count.
        out_channels: Number of filters.
        kernel_size: Square kernel side (int) or ``(kh, kw)``.
        stride: Convolution stride (same both axes).
        padding: Zero padding (same both axes).
        seed: Seed for He initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple[int, int],
        stride: int = 1,
        padding: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        kh, kw = (
            (kernel_size, kernel_size)
            if isinstance(kernel_size, int)
            else kernel_size
        )
        if min(kh, kw) < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        rng = np.random.default_rng(seed)
        fan_in = in_channels * kh * kw
        self.weight = Parameter(
            he_init((out_channels, in_channels, kh, kw), fan_in, rng), "weight"
        )
        self.bias = Parameter(np.zeros(out_channels), "bias")
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        if arr.ndim != 4 or arr.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (batch, {self.in_channels}, H, W), got {arr.shape}"
            )
        kh, kw = self.kernel_size
        cols, oh, ow = _im2col(arr, kh, kw, self.stride, self.padding)
        self._cols = cols
        self._x_shape = arr.shape
        self._out_hw = (oh, ow)
        w2 = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ w2.T + self.bias.data
        n = arr.shape[0]
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        n = self._x_shape[0]
        oh, ow = self._out_hw
        grad = (
            np.asarray(grad_out, dtype=np.float64)
            .transpose(0, 2, 3, 1)
            .reshape(n * oh * ow, self.out_channels)
        )
        w2 = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (grad.T @ self._cols).reshape(self.weight.shape)
        self.bias.grad += grad.sum(axis=0)
        grad_cols = grad @ w2
        kh, kw = self.kernel_size
        return _col2im(
            grad_cols, self._x_shape, kh, kw, self.stride, self.padding, oh, ow
        )
