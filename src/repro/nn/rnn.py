"""LSTM layer with explicit backpropagation through time."""

from __future__ import annotations

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.init import xavier_init
from repro.nn.module import Module, Parameter


class LSTMCell(Module):
    """Single LSTM step with the standard gate layout.

    Gates are computed as one fused affine map of ``[x, h]``; the weight
    columns are ordered ``[input, forget, cell, output]``.  The forget
    gate bias starts at 1 (the usual trick that stabilises early
    training).
    """

    def __init__(self, input_size: int, hidden_size: int, seed: int = 0) -> None:
        super().__init__()
        if input_size < 1 or hidden_size < 1:
            raise ValueError("sizes must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        rng = np.random.default_rng(seed)
        fan_in = input_size + hidden_size
        self.weight = Parameter(
            xavier_init((fan_in, 4 * hidden_size), fan_in, hidden_size, rng),
            "weight",
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter(bias, "bias")

    def step(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """One time step; returns ``(h, c, cache)``."""
        hs = self.hidden_size
        xh = np.concatenate([x, h_prev], axis=1)
        gates = xh @ self.weight.data + self.bias.data
        i = sigmoid(gates[:, :hs])
        f = sigmoid(gates[:, hs : 2 * hs])
        g = np.tanh(gates[:, 2 * hs : 3 * hs])
        o = sigmoid(gates[:, 3 * hs :])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = {
            "xh": xh, "i": i, "f": f, "g": g, "o": o,
            "c": c, "c_prev": c_prev, "tanh_c": tanh_c,
        }
        return h, c, cache

    def step_backward(
        self, grad_h: np.ndarray, grad_c: np.ndarray, cache: dict
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backprop one step; returns ``(grad_x, grad_h_prev, grad_c_prev)``.

        Accumulates parameter gradients as a side effect.
        """
        i, f, g, o = cache["i"], cache["f"], cache["g"], cache["o"]
        tanh_c = cache["tanh_c"]
        dc = grad_c + grad_h * o * (1.0 - tanh_c**2)
        do = grad_h * tanh_c
        di = dc * g
        dg = dc * i
        df = dc * cache["c_prev"]
        dgates = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g**2),
                do * o * (1.0 - o),
            ],
            axis=1,
        )
        self.weight.grad += cache["xh"].T @ dgates
        self.bias.grad += dgates.sum(axis=0)
        dxh = dgates @ self.weight.data.T
        grad_x = dxh[:, : self.input_size]
        grad_h_prev = dxh[:, self.input_size :]
        grad_c_prev = dc * f
        return grad_x, grad_h_prev, grad_c_prev

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("use LSTM for sequence processing")

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("use LSTM for sequence processing")


class LSTM(Module):
    """Sequence LSTM returning the final hidden state.

    Input shape ``(batch, time, features)``; output ``(batch, hidden)``.
    The full hidden sequence of the last forward pass is available as
    :attr:`hidden_sequence` (used by tests and diagnostics).
    """

    def __init__(self, input_size: int, hidden_size: int, seed: int = 0) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, seed)
        self.hidden_size = hidden_size
        self._caches: list[dict] = []
        self._n_steps = 0
        self.hidden_sequence: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        if arr.ndim != 3 or arr.shape[2] != self.cell.input_size:
            raise ValueError(
                f"expected (batch, time, {self.cell.input_size}), "
                f"got {arr.shape}"
            )
        batch, steps, _ = arr.shape
        if steps < 1:
            raise ValueError("sequence must have at least one step")
        h = np.zeros((batch, self.hidden_size))
        c = np.zeros((batch, self.hidden_size))
        self._caches = []
        hs = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            h, c, cache = self.cell.step(arr[:, t], h, c)
            self._caches.append(cache)
            hs[:, t] = h
        self._n_steps = steps
        self.hidden_sequence = hs
        return h

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._caches:
            raise RuntimeError("backward called before forward")
        grad_h = np.asarray(grad_out, dtype=np.float64)
        batch = grad_h.shape[0]
        grad_c = np.zeros_like(grad_h)
        grad_x = np.empty(
            (batch, self._n_steps, self.cell.input_size)
        )
        for t in range(self._n_steps - 1, -1, -1):
            gx, grad_h, grad_c = self.cell.step_backward(
                grad_h, grad_c, self._caches[t]
            )
            grad_x[:, t] = gx
        return grad_x
