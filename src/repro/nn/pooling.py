"""Pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class MaxPool2d(Module):
    """Non-overlapping max pooling over ``(batch, C, H, W)``.

    Height/width must be divisible by the pool size (the detectors pad
    their inputs accordingly); this keeps the backward pass an exact
    scatter instead of dealing with ragged edges.
    """

    def __init__(self, pool: int = 2) -> None:
        super().__init__()
        if pool < 1:
            raise ValueError(f"pool size must be >= 1, got {pool}")
        self.pool = pool
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        n, c, h, w = arr.shape
        p = self.pool
        if h % p or w % p:
            raise ValueError(
                f"input {h}x{w} not divisible by pool size {p}"
            )
        blocks = arr.reshape(n, c, h // p, p, w // p, p)
        flat = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(
            n, c, h // p, w // p, p * p
        )
        self._argmax = flat.argmax(axis=-1)
        self._x_shape = arr.shape
        return flat.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        p = self.pool
        grad = np.asarray(grad_out, dtype=np.float64)
        flat = np.zeros((n, c, h // p, w // p, p * p))
        np.put_along_axis(
            flat, self._argmax[..., None], grad[..., None], axis=-1
        )
        blocks = flat.reshape(n, c, h // p, w // p, p, p).transpose(
            0, 1, 2, 4, 3, 5
        )
        return blocks.reshape(n, c, h, w)


class GlobalAveragePool2d(Module):
    """Average over the spatial axes: ``(N, C, H, W) -> (N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        if arr.ndim != 4:
            raise ValueError(f"expected (N, C, H, W), got {arr.shape}")
        self._x_shape = arr.shape
        return arr.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        grad = np.asarray(grad_out, dtype=np.float64) / (h * w)
        return np.broadcast_to(grad[:, :, None, None], (n, c, h, w)).copy()
