"""Optimisers operating on lists of Parameters."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser; subclasses implement :meth:`step`."""

    def __init__(self, parameters: list[Parameter]) -> None:
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = parameters

    def zero_grad(self) -> None:
        """Zero all parameter gradients."""
        for param in self.parameters:
            param.grad[...] = 0.0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and L2 decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in parameters]

    def step(self) -> None:
        for param, vel in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel -= self.lr * grad
                param.data += vel
            else:
                param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba 2015)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in parameters]
        self._v = [np.zeros_like(p.data) for p in parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
