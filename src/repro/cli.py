"""Command-line interface: regenerate every paper artefact.

Usage::

    repro-laelaps table1 [--scale 720] [--methods laelaps,svm]
    repro-laelaps table2
    repro-laelaps fig3
    repro-laelaps scaling
    repro-laelaps backends
    repro-laelaps sessions [--patients 6] [--backend auto]
    repro-laelaps serve [--workers 4] [--mode process]
    repro-laelaps serve-http [--port 0] [--checkpoint-dir DIR]
    repro-laelaps loadtest [--sessions 256] [--out BENCH_load_slo.json]
    repro-laelaps synth --out DIR [--channels 64,1024] [--minutes 30]
    repro-laelaps lint [PATHS ...] [--baseline FILE] [--format json]

(or ``python -m repro ...``).  ``repro --help`` lists every sub-command
with a one-line description; unknown sub-commands exit non-zero with
the list of valid choices.  See EXPERIMENTS.md for the recorded runs
and ``docs/serving.md`` for the serving demos.

Sub-commands live in one :data:`COMMANDS` registry (name, help line,
argument wiring, handler); the parser, ``--help`` text and the CLI
tests all derive from it, so they cannot drift apart.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Callable

from repro.evaluation.report import render_table
from repro.hdc.engine import UNPACKED_ENGINE, backend_choices

#: Default lint targets, mirroring the CI static-analysis job.
LINT_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")

#: Default committed-baseline file, used when it exists.
LINT_DEFAULT_BASELINE = "lint-baseline.json"


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.evaluation.table1 import default_methods, run_table1

    include = tuple(args.methods.split(","))
    methods = default_methods(
        dim=args.dim, include=include, backend=args.backend
    )
    start = time.perf_counter()
    result = run_table1(
        methods,
        hours_scale=1.0 / args.scale,
        fs=args.fs,
        progress=print if args.verbose else None,
    )
    print(result.render())
    print()
    for method in result.methods():
        summary = result.summary(method)
        print(
            f"{method:>8}: detected {summary['detected']:.0f}/"
            f"{summary['test_seizures']:.0f}, "
            f"mean FDR {summary['mean_fdr_per_hour']:.2f}/h, "
            f"mean sensitivity {100 * summary['mean_sensitivity']:.1f} %, "
            f"mean delay {summary['mean_delay_s']:.1f} s"
        )
    print(f"\n[total wall time {time.perf_counter() - start:.0f} s, "
          f"duration scale 1/{args.scale:.0f}, fs {args.fs:.0f} Hz]")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.hw.energy import table2

    rows = table2()
    table = render_table(
        ["Elect", "Method", "Res", "time[ms]", "(x)", "energy[mJ]", "(x)"],
        [
            [
                r["electrodes"], r["method"], r["resource"],
                r["time_ms"], r["time_ratio"], r["energy_mj"],
                r["energy_ratio"],
            ]
            for r in rows
        ],
        title="Table II (reproduction): cost per 0.5 s classification event",
        precision=1,
    )
    print(table)
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.hw.energy import fig3_points

    points = fig3_points(n_electrodes=args.electrodes)
    table = render_table(
        ["Method", "Res", "energy[mJ]", "FDR[/h]"],
        [
            [p["method"], p["resource"], p["energy_mj"], p["fdr_per_hour"]]
            for p in points
        ],
        title=(
            "Fig. 3 (reproduction): FDR vs energy per classification, "
            f"{args.electrodes} electrodes (paper FDR means)"
        ),
    )
    print(table)
    return 0


def _train_demo_fleet(
    n_patients: int, seconds: float, dim: int, backend: str, fs: float
):
    """Synthetic patients for the serving demos: fitted detectors + signals.

    Each patient gets two planned seizures — the first is trained on,
    the second is unseen and should raise the demo's alarms.
    """
    from repro.core.config import LaelapsConfig
    from repro.core.detector import LaelapsDetector
    from repro.core.training import TrainingSegments
    from repro.data.synthetic import (
        SeizurePlan,
        SynthesisParams,
        SyntheticIEEGGenerator,
    )

    detectors = {}
    signals = {}
    for i in range(n_patients):
        n_electrodes = (16, 24, 32)[i % 3]
        generator = SyntheticIEEGGenerator(
            n_electrodes, SynthesisParams(fs=fs), seed=1000 + i
        )
        recording = generator.generate(
            seconds,
            [
                SeizurePlan(seconds * 0.3, 20.0),
                SeizurePlan(seconds * 0.75, 20.0),
            ],
        )
        detector = LaelapsDetector(
            n_electrodes,
            LaelapsConfig(dim=dim, fs=fs, seed=3 + i, backend=backend),
        )
        onset = seconds * 0.3
        detector.fit(
            recording.data,
            TrainingSegments(
                ictal=((onset, onset + 20.0),),
                interictal=(seconds * 0.05, seconds * 0.05 + 30.0),
            ),
        )
        detector.tune_tr(
            recording.data[: int((onset + 30.0) * fs)],
            [(onset, onset + 20.0)],
        )
        patient_id = f"patient-{i:02d}"
        detectors[patient_id] = detector
        signals[patient_id] = recording.data
    return detectors, signals


def _cmd_sessions(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.sessions import StreamSessionManager

    fs = 256.0
    duration = args.seconds
    print(
        f"training {args.patients} patient models "
        f"(d={args.dim}, {args.backend} backend) ..."
    )
    detectors, signals = _train_demo_fleet(
        args.patients, duration, args.dim, args.backend, fs
    )
    manager = StreamSessionManager()
    for patient_id, detector in detectors.items():
        manager.open(patient_id, detector)
    chunk = int(fs // 2)  # one 0.5 s block per tick, as served live
    print(
        f"streaming {args.patients} concurrent sessions "
        f"({duration:.0f} s each, 0.5 s ticks, shared batched sweeps) ..."
    )
    start = time.perf_counter()
    events = manager.run(signals, chunk)
    elapsed = time.perf_counter() - start
    n_windows = sum(len(v) for v in events.values())
    for patient_id in sorted(events):
        alarms = [e.time_s for e in events[patient_id] if e.alarm]
        print(
            f"  {patient_id}: {len(events[patient_id])} windows, alarms at "
            f"{np.round(alarms, 1).tolist()} s "
            f"(true onsets {duration * 0.3:.0f} s trained, "
            f"{duration * 0.75:.0f} s unseen)"
        )
    print(
        f"\n[{n_windows} windows across {args.patients} sessions in "
        f"{elapsed:.2f} s = {n_windows / max(elapsed, 1e-9):,.0f} windows/s]"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import tempfile

    import numpy as np

    from repro.serve import ShardedStreamGateway

    fs = 256.0
    duration = args.seconds
    print(
        f"training {args.patients} patient models "
        f"(d={args.dim}, {args.backend} backend) ..."
    )
    detectors, signals = _train_demo_fleet(
        args.patients, duration, args.dim, args.backend, fs
    )
    chunk = int(fs // 2)
    half = int(duration * 0.5 * fs)
    print(
        f"serving {args.patients} sessions on {args.workers} "
        f"{args.mode} workers (0.5 s ticks) ..."
    )
    start = time.perf_counter()
    gateway = ShardedStreamGateway(args.workers, mode=args.mode)
    for patient_id, detector in detectors.items():
        gateway.open(patient_id, detector)
    for worker_id, sessions in sorted(gateway.shard_map().items()):
        print(f"  shard {worker_id}: {len(sessions)} sessions")
    events = gateway.run(
        {sid: sig[:half] for sid, sig in signals.items()}, chunk
    )
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        gateway.checkpoint(checkpoint_dir)
        gateway.shutdown()
        restored = ShardedStreamGateway.restore(
            checkpoint_dir, n_workers=args.workers + 1, mode=args.mode
        )
    print(
        f"mid-stream fleet checkpoint -> restored onto "
        f"{args.workers + 1} workers, streams resume bit-exactly ..."
    )
    with restored:
        second = restored.run(
            {sid: sig[half:] for sid, sig in signals.items()}, chunk
        )
    for patient_id, new_events in second.items():
        events[patient_id].extend(new_events)
    elapsed = time.perf_counter() - start
    n_windows = sum(len(v) for v in events.values())
    for patient_id in sorted(events):
        alarms = [e.time_s for e in events[patient_id] if e.alarm]
        print(
            f"  {patient_id}: {len(events[patient_id])} windows, alarms at "
            f"{np.round(alarms, 1).tolist()} s "
            f"(true onsets {duration * 0.3:.0f} s trained, "
            f"{duration * 0.75:.0f} s unseen)"
        )
    print(
        f"\n[{n_windows} windows across {args.patients} sessions / "
        f"{args.workers} shards in {elapsed:.2f} s = "
        f"{n_windows / max(elapsed, 1e-9):,.0f} windows/s]"
    )
    return 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.serve import ShardedStreamGateway
    from repro.serve.gateway import FLEET_MANIFEST
    from repro.serve.service import run_service

    checkpoint_dir = (
        Path(args.checkpoint_dir) if args.checkpoint_dir else None
    )
    if (
        checkpoint_dir is not None
        and (checkpoint_dir / FLEET_MANIFEST).exists()
    ):
        print(f"restoring fleet from checkpoint {checkpoint_dir} ...")
        gateway = ShardedStreamGateway.restore(
            checkpoint_dir, n_workers=args.workers, mode=args.mode
        )
    else:
        gateway = ShardedStreamGateway(args.workers, mode=args.mode)
        if args.patients:
            print(
                f"training {args.patients} demo patient models "
                f"(d={args.dim}, {args.backend} backend) ..."
            )
            detectors, _ = _train_demo_fleet(
                args.patients, args.seconds, args.dim, args.backend, 256.0
            )
            for patient_id, detector in detectors.items():
                gateway.open(patient_id, detector)
    print(
        f"serving {len(gateway)} sessions on {args.workers} {args.mode} "
        f"workers; GET /healthz and /metrics on the same port; "
        "SIGTERM drains"
        + (f" to a checkpoint in {checkpoint_dir}" if checkpoint_dir else "")
        + " (bound address in the 'service listening' log line)"
    )
    return run_service(
        gateway,
        host=args.host,
        port=args.port,
        checkpoint_dir=checkpoint_dir,
    )


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.evaluation.benchrec import (
        read_record,
        render_comparison,
        write_record,
    )
    from repro.serve.loadgen import LoadConfig, run_load_test

    config = LoadConfig(
        n_sessions=args.sessions,
        dim=args.dim,
        n_ticks=args.ticks,
        rate=args.rate,
        n_workers=args.workers,
        mode=args.mode,
        backend=args.backend,
        native_threads=args.native_threads,
        transport=args.transport,
    )
    report = run_load_test(config, progress=print)
    metrics = report.metrics
    table = render_table(
        ["Metric", "Value"],
        [[name, metrics[name]] for name in sorted(metrics)],
        title=(
            f"Load test: {args.sessions} sessions x {args.ticks} ticks on "
            f"{args.workers} {args.mode} workers ({report.engine})"
        ),
        precision=3,
    )
    print(table)
    if args.out:
        path = write_record(report.record(), args.out)
        print(f"\nbenchmark record written to {path}")
    if args.check:
        print()
        print(render_comparison(read_record(args.check), report.record()))
        print("(deltas are report-only; see docs/benchmarking.md)")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.hdc.engine import (
        AUTO_ENGINE,
        engine_capabilities,
        resolve_engine_name,
    )

    caps = engine_capabilities(args.dim)
    rows = [
        [
            cap["name"],
            cap["window_form"],
            cap["width_at_dim"],
            "yes" if cap["fused"] else "no",
            "yes" if cap["available"] else "no",
            cap["summary"],
        ]
        for cap in caps
    ]
    table = render_table(
        ["Engine", "Window form", f"width@d={args.dim}", "Fused",
         "Avail", "Capabilities"],
        rows,
        title="Registered compute engines (LaelapsConfig.backend values)",
    )
    print(table)
    for cap in caps:
        if not cap["available"]:
            print(
                f"\n'{cap['name']}' is unavailable on this host: "
                f"{cap['unavailable_reason']}"
            )
    print(
        f"\n'{AUTO_ENGINE}' resolves to "
        f"'{resolve_engine_name(AUTO_ENGINE)}' on this host; all engines "
        f"produce bit-identical labels and confidence scores."
    )
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.hw.energy import electrode_scaling

    sweep = electrode_scaling()
    counts = [e.n_electrodes for e in next(iter(sweep.values()))]
    rows = []
    for method, estimates in sweep.items():
        rows.append(
            [method] + [e.time_ms for e in estimates]
        )
    table = render_table(
        ["Method"] + [f"{n}e [ms]" for n in counts],
        rows,
        title="Sec. V-C scaling: time per classification vs electrode count",
        precision=1,
    )
    print(table)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import lint_paths, load_baseline

    baseline = None
    baseline_path = args.baseline
    if baseline_path is None:
        if Path(LINT_DEFAULT_BASELINE).exists():
            baseline_path = LINT_DEFAULT_BASELINE
    elif not Path(baseline_path).exists():
        print(f"baseline file not found: {baseline_path}", file=sys.stderr)
        return 2
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
    result = lint_paths(args.paths, baseline=baseline)
    if args.format == "json":
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(result.render_text())
    return result.exit_code


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.data.outofcore import (
        CohortSpec,
        MemberSpec,
        default_member_plans,
        generate_cohort,
    )
    from repro.data.synthetic import SynthesisParams

    try:
        channels = tuple(int(c) for c in args.channels.split(","))
    except ValueError:
        print(f"--channels must be a comma list of integers, got "
              f"{args.channels!r}", file=sys.stderr)
        return 2
    duration_s = args.minutes * 60.0
    try:
        plans = default_member_plans(duration_s, args.seizures)
        spec = CohortSpec(
            args.name,
            tuple(
                MemberSpec(f"m{ch:04d}", ch, duration_s, plans, seed=ch)
                for ch in channels
            ),
            params=SynthesisParams(fs=args.fs),
            seed=args.seed,
        )
        start = time.perf_counter()
        cohort = generate_cohort(spec, args.out,
                                 chunk_samples=args.chunk_samples)
    except ValueError as exc:
        print(f"synth: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    rows = [
        [
            member.member_id,
            member.n_electrodes,
            f"{member.duration_s / 60.0:.1f}",
            member.n_samples,
            len(member.seizures),
            f"{member.path.stat().st_size / 1e6:,.1f}",
        ]
        for member in cohort
    ]
    print(render_table(
        ["Member", "Channels", "Minutes", "Samples", "Seizures", "MB"],
        rows,
        title=(
            f"Cohort '{cohort.name}' @ {cohort.fs:g} Hz, seed "
            f"{cohort.seed} -> {args.out}"
        ),
    ))
    print(
        f"\n{len(rows)} member(s) synthesised in {elapsed:.1f} s; the "
        "manifest round-trips through load_cohort() — open members with "
        "repro.data.outofcore.open_member()."
    )
    return 0


def _args_table1(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", type=float, default=720.0,
                   help="duration scale divisor (default 720: 1 h -> 5 s)")
    p.add_argument("--fs", type=float, default=256.0)
    p.add_argument("--dim", type=int, default=1_000)
    p.add_argument("--methods", default="laelaps,svm,cnn,lstm")
    p.add_argument("--backend", choices=backend_choices(),
                   default=UNPACKED_ENGINE,
                   help="Laelaps compute engine (bit-exact on every "
                        "engine; see `repro backends`)")
    p.add_argument("--verbose", action="store_true")


def _args_fig3(p: argparse.ArgumentParser) -> None:
    p.add_argument("--electrodes", type=int, default=64)


def _args_backends(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dim", type=int, default=10_000,
                   help="dimension for the reported window widths")


def _args_sessions(p: argparse.ArgumentParser) -> None:
    p.add_argument("--patients", type=int, default=6,
                   help="number of concurrent patient streams")
    p.add_argument("--seconds", type=float, default=120.0,
                   help="synthetic recording length per patient")
    p.add_argument("--dim", type=int, default=2_000)
    p.add_argument("--backend", choices=backend_choices(),
                   default="auto",
                   help="compute engine of the demo detectors")


def _args_serve(p: argparse.ArgumentParser) -> None:
    p.add_argument("--patients", type=int, default=6,
                   help="number of concurrent patient streams")
    p.add_argument("--workers", type=int, default=2,
                   help="shard worker pool size")
    p.add_argument("--mode", choices=("inline", "process"),
                   default="process",
                   help="shard transport (inline = single process)")
    p.add_argument("--seconds", type=float, default=120.0,
                   help="synthetic recording length per patient")
    p.add_argument("--dim", type=int, default=2_000)
    p.add_argument("--backend", choices=backend_choices(),
                   default="auto",
                   help="compute engine of the demo detectors")


def _args_serve_http(p: argparse.ArgumentParser) -> None:
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (loopback by default)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (0 = ephemeral; the bound port is in "
                        "the 'service listening' log line)")
    p.add_argument("--workers", type=int, default=2,
                   help="shard worker pool size")
    p.add_argument("--mode", choices=("inline", "process"),
                   default="process",
                   help="shard transport (inline = single process)")
    p.add_argument("--checkpoint-dir", metavar="DIR",
                   help="drain checkpoint target; restored from on start "
                        "when it already holds a fleet manifest")
    p.add_argument("--patients", type=int, default=0,
                   help="pre-train this many demo patient sessions "
                        "(0 = start empty; clients open sessions over "
                        "the wire)")
    p.add_argument("--seconds", type=float, default=120.0,
                   help="synthetic recording length per demo patient")
    p.add_argument("--dim", type=int, default=2_000)
    p.add_argument("--backend", choices=backend_choices(),
                   default="auto",
                   help="compute engine of the demo detectors")


def _args_loadtest(p: argparse.ArgumentParser) -> None:
    p.add_argument("--sessions", type=int, default=64,
                   help="concurrent patient sessions")
    p.add_argument("--workers", type=int, default=2,
                   help="shard worker pool size")
    p.add_argument("--mode", choices=("inline", "process"),
                   default="inline",
                   help="shard transport (inline = single process)")
    p.add_argument("--ticks", type=int, default=40,
                   help="measured steady-state ticks")
    p.add_argument("--dim", type=int, default=2_000)
    p.add_argument("--rate", type=float, default=0.0,
                   help="tick pacing as a multiple of real time "
                        "(0 = as fast as possible)")
    p.add_argument("--backend", choices=backend_choices(),
                   default="auto",
                   help="compute engine of the served models")
    p.add_argument("--native-threads", type=int, default=0,
                   help="packed-native kernel threads per worker "
                        "(REPRO_NATIVE_THREADS; 0 = engine default)")
    p.add_argument("--transport", choices=("direct", "socket"),
                   default="direct",
                   help="tick path: in-process gateway calls, or the "
                        "asyncio service over loopback TCP")
    p.add_argument("--out", metavar="PATH",
                   help="write the run as a benchrec JSON record")
    p.add_argument("--check", metavar="BASELINE",
                   help="compare against a committed BENCH_*.json "
                        "baseline (report-only deltas)")


def _args_synth(p: argparse.ArgumentParser) -> None:
    p.add_argument("--out", required=True, metavar="DIR",
                   help="cohort directory (memmap members + manifest.json)")
    p.add_argument("--channels", default="64",
                   help="comma list of electrode counts; one disk-backed "
                        "member per count (default 64)")
    p.add_argument("--minutes", type=float, default=10.0,
                   help="recording length per member (default 10)")
    p.add_argument("--seizures", type=int, default=2,
                   help="evenly placed clinical seizures per member")
    p.add_argument("--seed", type=int, default=0,
                   help="cohort seed (members derive per-member streams)")
    p.add_argument("--fs", type=float, default=256.0)
    p.add_argument("--name", default="synth", help="cohort name")
    p.add_argument("--chunk-samples", type=int, default=None,
                   metavar="N",
                   help="generation chunk size; output is bit-identical "
                        "for every choice (default: ~32 MB of buffer)")


def _args_lint(p: argparse.ArgumentParser) -> None:
    p.add_argument("paths", nargs="*", default=list(LINT_DEFAULT_PATHS),
                   help="files/directories to lint "
                        f"(default: {' '.join(LINT_DEFAULT_PATHS)})")
    p.add_argument("--baseline", metavar="FILE",
                   help="sanctioned-findings file (default: "
                        f"{LINT_DEFAULT_BASELINE} when present)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format (json is the schema-versioned "
                        "machine envelope)")


@dataclass(frozen=True)
class CommandSpec:
    """One sub-command: the single source the parser and tests share."""

    name: str
    help: str
    handler: Callable[[argparse.Namespace], int]
    configure: Callable[[argparse.ArgumentParser], None] | None = None


#: Every sub-command, in ``--help`` display order.  Add commands here —
#: ``main`` wires the registry into argparse and ``tests/test_cli.py``
#: asserts help/error output against :func:`command_names`.
COMMANDS: tuple[CommandSpec, ...] = (
    CommandSpec("table1", "per-patient detection results",
                _cmd_table1, _args_table1),
    CommandSpec("table2", "TX2 time/energy per classification", _cmd_table2),
    CommandSpec("fig3", "FDR vs energy scatter (64 electrodes)",
                _cmd_fig3, _args_fig3),
    CommandSpec("scaling", "electrode-count scaling sweep", _cmd_scaling),
    CommandSpec("backends",
                "list registered compute engines (capabilities, word layout)",
                _cmd_backends, _args_backends),
    CommandSpec("sessions",
                "multi-patient stream-serving demo (batched sweeps)",
                _cmd_sessions, _args_sessions),
    CommandSpec("serve",
                "sharded multi-worker serving demo (checkpoint + rebalance)",
                _cmd_serve, _args_serve),
    CommandSpec("serve-http",
                "network service over a gateway (/healthz, /metrics, "
                "SIGTERM drain)",
                _cmd_serve_http, _args_serve_http),
    CommandSpec("loadtest",
                "load-test the sharded gateway (latency SLO harness)",
                _cmd_loadtest, _args_loadtest),
    CommandSpec("synth",
                "synthesise a disk-backed (out-of-core) iEEG cohort",
                _cmd_synth, _args_synth),
    CommandSpec("lint",
                "run the project's static-analysis contract rules",
                _cmd_lint, _args_lint),
)


def command_names() -> tuple[str, ...]:
    """Registered sub-command names, ``--help`` display-ordered."""
    return tuple(spec.name for spec in COMMANDS)


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-laelaps``."""
    parser = argparse.ArgumentParser(
        prog="repro-laelaps",
        description=(
            "Regenerate the tables and figures of the Laelaps paper and "
            "run the serving demos"
        ),
        epilog=(
            "Run `repro <command> --help` for per-command options; see "
            "docs/ for the architecture, paper map and serving guides."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True,
                                title="commands")
    for spec in COMMANDS:
        p = sub.add_parser(spec.name, help=spec.help)
        if spec.configure is not None:
            spec.configure(p)
        p.set_defaults(func=spec.handler)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `... | head`); the
        # conventional CLI response is a quiet exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
