"""Command-line interface: regenerate every paper artefact.

Usage::

    repro-laelaps table1 [--scale 720] [--methods laelaps,svm]
    repro-laelaps table2
    repro-laelaps fig3
    repro-laelaps scaling

(or ``python -m repro ...``).  Each sub-command prints the corresponding
table of the paper; see EXPERIMENTS.md for the recorded runs.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.evaluation.report import render_table


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.evaluation.table1 import default_methods, run_table1

    include = tuple(args.methods.split(","))
    methods = default_methods(
        dim=args.dim, include=include, backend=args.backend
    )
    start = time.time()
    result = run_table1(
        methods,
        hours_scale=1.0 / args.scale,
        fs=args.fs,
        progress=print if args.verbose else None,
    )
    print(result.render())
    print()
    for method in result.methods():
        summary = result.summary(method)
        print(
            f"{method:>8}: detected {summary['detected']:.0f}/"
            f"{summary['test_seizures']:.0f}, "
            f"mean FDR {summary['mean_fdr_per_hour']:.2f}/h, "
            f"mean sensitivity {100 * summary['mean_sensitivity']:.1f} %, "
            f"mean delay {summary['mean_delay_s']:.1f} s"
        )
    print(f"\n[total wall time {time.time() - start:.0f} s, "
          f"duration scale 1/{args.scale:.0f}, fs {args.fs:.0f} Hz]")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.hw.energy import table2

    rows = table2()
    table = render_table(
        ["Elect", "Method", "Res", "time[ms]", "(x)", "energy[mJ]", "(x)"],
        [
            [
                r["electrodes"], r["method"], r["resource"],
                r["time_ms"], r["time_ratio"], r["energy_mj"],
                r["energy_ratio"],
            ]
            for r in rows
        ],
        title="Table II (reproduction): cost per 0.5 s classification event",
        precision=1,
    )
    print(table)
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.hw.energy import fig3_points

    points = fig3_points(n_electrodes=args.electrodes)
    table = render_table(
        ["Method", "Res", "energy[mJ]", "FDR[/h]"],
        [
            [p["method"], p["resource"], p["energy_mj"], p["fdr_per_hour"]]
            for p in points
        ],
        title=(
            "Fig. 3 (reproduction): FDR vs energy per classification, "
            f"{args.electrodes} electrodes (paper FDR means)"
        ),
    )
    print(table)
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.hw.energy import electrode_scaling

    sweep = electrode_scaling()
    counts = [e.n_electrodes for e in next(iter(sweep.values()))]
    rows = []
    for method, estimates in sweep.items():
        rows.append(
            [method] + [e.time_ms for e in estimates]
        )
    table = render_table(
        ["Method"] + [f"{n}e [ms]" for n in counts],
        rows,
        title="Sec. V-C scaling: time per classification vs electrode count",
        precision=1,
    )
    print(table)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-laelaps``."""
    parser = argparse.ArgumentParser(
        prog="repro-laelaps",
        description="Regenerate the tables and figures of the Laelaps paper",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="per-patient detection results")
    p1.add_argument("--scale", type=float, default=720.0,
                    help="duration scale divisor (default 720: 1 h -> 5 s)")
    p1.add_argument("--fs", type=float, default=256.0)
    p1.add_argument("--dim", type=int, default=1_000)
    p1.add_argument("--methods", default="laelaps,svm,cnn,lstm")
    p1.add_argument("--backend", choices=("unpacked", "packed"),
                    default="unpacked",
                    help="Laelaps inference backend (bit-exact either way)")
    p1.add_argument("--verbose", action="store_true")
    p1.set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("table2", help="TX2 time/energy per classification")
    p2.set_defaults(func=_cmd_table2)

    p3 = sub.add_parser("fig3", help="FDR vs energy scatter (64 electrodes)")
    p3.add_argument("--electrodes", type=int, default=64)
    p3.set_defaults(func=_cmd_fig3)

    p4 = sub.add_parser("scaling", help="electrode-count scaling sweep")
    p4.set_defaults(func=_cmd_scaling)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `... | head`); the
        # conventional CLI response is a quiet exit.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
