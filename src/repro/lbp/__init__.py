"""Local-binary-pattern (LBP) symbolisation of iEEG signals.

LBP codes transform a real-valued time series into a stream of small
integer symbols that capture only the *relational* structure of the signal
(whether the amplitude rises or falls between adjacent samples).  During
interictal activity the code histogram is close to uniform; during seizures
the slower, more asymmetric oscillations concentrate the histogram on a few
codes — the separation Laelaps exploits.
"""

from repro.lbp.codes import (
    LBPConfig,
    lbp_codes,
    lbp_codes_multichannel,
    num_codes,
    sign_bits,
)
from repro.lbp.histogram import (
    code_histogram,
    code_histogram_multichannel,
    sliding_histograms,
)
from repro.lbp.stats import (
    code_entropy,
    dominant_code_fraction,
    histogram_flatness,
    occupied_fraction,
)

__all__ = [
    "LBPConfig",
    "sign_bits",
    "lbp_codes",
    "lbp_codes_multichannel",
    "num_codes",
    "code_histogram",
    "code_histogram_multichannel",
    "sliding_histograms",
    "code_entropy",
    "histogram_flatness",
    "dominant_code_fraction",
    "occupied_fraction",
]
