"""Computation of one-dimensional local binary pattern codes.

Following Sec. II-A of the paper, an LBP code is computed in two steps:

1. Each pair of adjacent samples is reduced to one bit: 1 if the signal
   increases, 0 otherwise (ties count as "not increasing").
2. The code at sampling point ``t`` concatenates the bit at ``t`` with the
   following ``length - 1`` bits, the bit at ``t`` being the most
   significant.  The code stream therefore moves by one sample.

A signal of ``T`` samples yields ``T - length`` codes (``T - 1`` sign bits,
each code consuming ``length`` consecutive bits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Widest code length for which ``2**length`` fits comfortably in uint8
#: histograms and item memories; the paper explores lengths 4..8.
MAX_LENGTH = 16


@dataclass(frozen=True)
class LBPConfig:
    """LBP symbolisation parameters.

    Attributes:
        length: Number of sign bits per code (the paper uses 6, giving 64
            symbols).  Must be in ``[1, MAX_LENGTH]``.
    """

    length: int = 6

    def __post_init__(self) -> None:
        if not 1 <= self.length <= MAX_LENGTH:
            raise ValueError(
                f"LBP length must be in [1, {MAX_LENGTH}], got {self.length}"
            )

    @property
    def alphabet_size(self) -> int:
        """Number of distinct codes, ``2 ** length``."""
        return 1 << self.length


def num_codes(n_samples: int, length: int = 6) -> int:
    """Number of LBP codes produced by a signal of ``n_samples`` samples."""
    return max(0, n_samples - length)


def sign_bits(signal: np.ndarray) -> np.ndarray:
    """First symbolisation step: sign of the temporal difference.

    Args:
        signal: Array ``(n_samples,)`` or ``(n_samples, n_channels)``.

    Returns:
        uint8 array of shape ``(n_samples - 1, ...)`` with 1 where the
        signal strictly increases and 0 otherwise.
    """
    arr = np.asarray(signal)
    if arr.shape[0] < 2:
        return np.zeros((0,) + arr.shape[1:], dtype=np.uint8)
    return (np.diff(arr, axis=0) > 0).astype(np.uint8)


def _bits_to_codes(bits: np.ndarray, length: int) -> np.ndarray:
    """Slide a ``length``-bit MSB-first window over a bit stream.

    ``bits`` is ``(n_bits, ...)``; the result is ``(n_bits - length + 1, ...)``
    of dtype uint16 (uint8 would overflow for length > 8).
    """
    n_bits = bits.shape[0]
    n_out = n_bits - length + 1
    if n_out <= 0:
        return np.zeros((0,) + bits.shape[1:], dtype=np.uint16)
    codes = np.zeros((n_out,) + bits.shape[1:], dtype=np.uint16)
    for k in range(length):
        shift = length - 1 - k
        codes += bits[k : k + n_out].astype(np.uint16) << shift
    return codes


def lbp_codes(signal: np.ndarray, length: int = 6) -> np.ndarray:
    """LBP code stream of a single-channel signal.

    Args:
        signal: 1-D array of ``n_samples`` amplitudes.
        length: Code length in bits.

    Returns:
        uint16 array of ``n_samples - length`` codes in ``[0, 2**length)``.
    """
    arr = np.asarray(signal)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D signal, got shape {arr.shape}")
    LBPConfig(length=length)  # validate
    return _bits_to_codes(sign_bits(arr), length)


def lbp_codes_multichannel(signal: np.ndarray, length: int = 6) -> np.ndarray:
    """LBP code streams for every channel of a multichannel signal.

    Args:
        signal: Array ``(n_samples, n_channels)``.
        length: Code length in bits.

    Returns:
        uint16 array ``(n_samples - length, n_channels)``; column ``j`` is
        the code stream of electrode ``j``.
    """
    arr = np.asarray(signal)
    if arr.ndim != 2:
        raise ValueError(f"expected (n_samples, n_channels), got {arr.shape}")
    LBPConfig(length=length)  # validate
    return _bits_to_codes(sign_bits(arr), length)
