"""Directed horizontal visibility graph (HVG) symbolisation.

Sec. II-A of the paper argues that LBP codes are *more efficient* than
other symbolisation methods, naming directed horizontal graphs
(Schindler et al. 2016) "that assign an integer input and output degree
to each time point".  This module implements that comparator so the
claim can be tested (``benchmarks/bench_symbolization.py``): two samples
``x[i]`` and ``x[j]`` (i < j) are connected when every sample between
them is smaller than both; the symbol of a time point is its pair of
(input, output) degrees, i.e. how many earlier/later points it "sees".

Degrees are capped (they are unbounded in theory but heavy-tailed in
practice) so the alphabet stays finite: a cap of 7 gives an 8 x 8 = 64
symbol alphabet, directly comparable to 6-bit LBP codes.
"""

from __future__ import annotations

import numpy as np


def hvg_degrees(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """In/out degrees of the directed horizontal visibility graph.

    The *out* degree of ``i`` counts later samples it sees; the *in*
    degree counts earlier ones.  Computed in O(n) amortised with a
    monotone stack: when ``x[j]`` arrives, every stacked sample smaller
    than it is popped (their horizon closes at ``j``), and each pop adds
    one edge.

    Args:
        signal: 1-D array of amplitudes.

    Returns:
        ``(in_degrees, out_degrees)`` int64 arrays aligned with the
        signal.
    """
    x = np.asarray(signal, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected 1-D signal, got shape {x.shape}")
    n = x.size
    in_deg = np.zeros(n, dtype=np.int64)
    out_deg = np.zeros(n, dtype=np.int64)
    stack: list[int] = []
    for j in range(n):
        # Pop everything strictly below x[j]: those points see j as
        # their last neighbour to the right.
        while stack and x[stack[-1]] < x[j]:
            i = stack.pop()
            out_deg[i] += 1
            in_deg[j] += 1
        if stack:
            # The first non-smaller sample also sees j (and stays, since
            # it may see further points if equal-height plateaus end).
            out_deg[stack[-1]] += 1
            in_deg[j] += 1
            if x[stack[-1]] == x[j]:
                stack.pop()
        stack.append(j)
    return in_deg, out_deg


def hvg_codes(
    signal: np.ndarray, degree_cap: int = 7
) -> np.ndarray:
    """Symbol stream from capped (in, out) degree pairs.

    Args:
        signal: 1-D amplitude array.
        degree_cap: Degrees above this are clipped; the alphabet is
            ``(degree_cap + 1) ** 2`` symbols (64 at the default cap,
            matching the 6-bit LBP alphabet).

    Returns:
        uint16 array of ``len(signal)`` symbols.
    """
    if degree_cap < 1:
        raise ValueError(f"degree_cap must be >= 1, got {degree_cap}")
    in_deg, out_deg = hvg_degrees(signal)
    base = degree_cap + 1
    codes = (
        np.minimum(in_deg, degree_cap) * base
        + np.minimum(out_deg, degree_cap)
    )
    return codes.astype(np.uint16)


def hvg_codes_multichannel(
    signal: np.ndarray, degree_cap: int = 7
) -> np.ndarray:
    """Per-channel HVG symbol streams, ``(n_samples, n_channels)``."""
    arr = np.asarray(signal)
    if arr.ndim != 2:
        raise ValueError(f"expected (n_samples, n_channels), got {arr.shape}")
    out = np.empty(arr.shape, dtype=np.uint16)
    for ch in range(arr.shape[1]):
        out[:, ch] = hvg_codes(arr[:, ch], degree_cap)
    return out


def hvg_alphabet_size(degree_cap: int = 7) -> int:
    """Number of distinct HVG symbols at a degree cap."""
    return (degree_cap + 1) ** 2
