"""Symbol statistics quantifying the ictal/interictal histogram contrast.

Sec. II-A of the paper observes that interictal windows have a flattened
LBP histogram while ictal windows are dominated by a single code with many
codes never occurring.  These statistics make that observation measurable
and are used by the data-substrate tests to verify that the synthetic
generator reproduces the documented signal regimes.
"""

from __future__ import annotations

import numpy as np


def _as_distribution(hist: np.ndarray) -> np.ndarray:
    """Normalise a histogram to a probability distribution."""
    arr = np.asarray(hist, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D histogram, got shape {arr.shape}")
    if np.any(arr < 0):
        raise ValueError("histogram bins must be non-negative")
    total = arr.sum()
    if total == 0:
        raise ValueError("histogram is empty")
    return arr / total


def code_entropy(hist: np.ndarray, base: float = 2.0) -> float:
    """Shannon entropy of a code histogram in bits (by default).

    A uniform histogram over ``K`` bins scores ``log2(K)``; a histogram
    concentrated on one code scores 0.
    """
    p = _as_distribution(hist)
    nz = p[p > 0]
    return float(-(nz * (np.log(nz) / np.log(base))).sum())


def histogram_flatness(hist: np.ndarray) -> float:
    """Normalised entropy in ``[0, 1]``: 1 for uniform, 0 for degenerate.

    Defined as ``entropy / log2(K)`` over the ``K`` histogram bins; a
    single-bin histogram is defined to have flatness 0.
    """
    p = _as_distribution(hist)
    if p.size <= 1:
        return 0.0
    return code_entropy(p) / float(np.log2(p.size))


def dominant_code_fraction(hist: np.ndarray) -> float:
    """Fraction of mass carried by the most frequent code.

    Ictal windows approach 1 (one predominant code); interictal windows of
    a flat histogram over ``K`` codes approach ``1 / K``.
    """
    p = _as_distribution(hist)
    return float(p.max())


def occupied_fraction(hist: np.ndarray) -> float:
    """Fraction of codes that occur at least once.

    The paper notes that many codes never occur during seizures; this is
    the corresponding statistic (low during ictal, near 1 interictally for
    windows much longer than the alphabet).
    """
    arr = np.asarray(hist, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"expected non-empty 1-D histogram, got {arr.shape}")
    return float(np.count_nonzero(arr) / arr.size)
