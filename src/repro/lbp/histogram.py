"""Histograms of LBP codes.

The code histogram over an analysis window is the statistic that separates
ictal from interictal iEEG (Sec. II-A): interictal windows spread their
mass over most codes while ictal windows concentrate it.  The explicit
histograms here back the LBP+SVM baseline and the symbol statistics; the
Laelaps encoder represents the same histogram implicitly in HD space.
"""

from __future__ import annotations

import numpy as np

from repro.signal.windows import WindowSpec, window_start_indices


def code_histogram(
    codes: np.ndarray, alphabet_size: int, normalise: bool = False
) -> np.ndarray:
    """Histogram of a 1-D code stream.

    Args:
        codes: Integer array of codes in ``[0, alphabet_size)``.
        alphabet_size: Number of histogram bins (``2 ** length``).
        normalise: Return frequencies summing to 1 instead of counts
            (an all-empty stream returns all zeros).

    Returns:
        float64 array of ``alphabet_size`` bin values.
    """
    arr = np.asarray(codes)
    if arr.size and (arr.min() < 0 or arr.max() >= alphabet_size):
        raise ValueError("code out of range for alphabet size")
    hist = np.bincount(arr.ravel(), minlength=alphabet_size).astype(np.float64)
    if normalise and hist.sum() > 0:
        hist /= hist.sum()
    return hist


def code_histogram_multichannel(
    codes: np.ndarray, alphabet_size: int, normalise: bool = False
) -> np.ndarray:
    """Per-channel histograms of a ``(n_codes, n_channels)`` code array.

    Returns:
        float64 array ``(n_channels, alphabet_size)``.
    """
    arr = np.asarray(codes)
    if arr.ndim != 2:
        raise ValueError(f"expected (n_codes, n_channels), got {arr.shape}")
    n_channels = arr.shape[1]
    out = np.empty((n_channels, alphabet_size), dtype=np.float64)
    for ch in range(n_channels):
        out[ch] = code_histogram(arr[:, ch], alphabet_size, normalise)
    return out


def sliding_histograms(
    codes: np.ndarray,
    alphabet_size: int,
    spec: WindowSpec,
    normalise: bool = True,
) -> np.ndarray:
    """Per-window, per-channel histograms of a multichannel code stream.

    This is the feature extractor of the LBP+SVM baseline: each analysis
    window becomes the concatenation of its per-electrode histograms.

    Args:
        codes: ``(n_codes, n_channels)`` integer code array.
        alphabet_size: Number of bins per channel.
        spec: Window geometry in *code* samples.
        normalise: Normalise each channel histogram to sum to 1.

    Returns:
        float64 array ``(n_windows, n_channels, alphabet_size)``.
    """
    arr = np.asarray(codes)
    if arr.ndim != 2:
        raise ValueError(f"expected (n_codes, n_channels), got {arr.shape}")
    starts = window_start_indices(arr.shape[0], spec)
    n_channels = arr.shape[1]
    out = np.zeros((len(starts), n_channels, alphabet_size), dtype=np.float64)
    # Accumulate with one bincount per (window, channel) on small slices;
    # offsetting codes by channel lets a single bincount cover all channels.
    offsets = np.arange(n_channels, dtype=np.int64) * alphabet_size
    for i, start in enumerate(starts):
        chunk = arr[start : start + spec.window_samples].astype(np.int64)
        flat = (chunk + offsets[None, :]).ravel()
        counts = np.bincount(flat, minlength=n_channels * alphabet_size)
        out[i] = counts.reshape(n_channels, alphabet_size)
    if normalise:
        sums = out.sum(axis=2, keepdims=True)
        np.divide(out, sums, out=out, where=sums > 0)
    return out
