"""E13 — symbolisation comparison: LBP vs directed horizontal graphs.

Sec. II-A claims LBP codes are *more efficient* than other
symbolisations such as directed horizontal (visibility) graphs, which
assign an integer in/out degree to each time point.  This bench runs
the HD pipeline with both symbolisers (equal 64-symbol alphabets) on
one patient: detection quality is comparable — the efficiency argument,
not accuracy, justifies LBP.  On cost, an LBP code is a windowed sign
bit (one comparison per sample), while an HVG degree needs a monotone
stack walk per sample; the measured software gap is two orders of
magnitude, and the hardware gap in the paper's setting is what the
claim is about.
"""

from __future__ import annotations

import time

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.symbolizers import HVGSymbolizer, LBPSymbolizer
from repro.data.cohort import PatientSpec, synthesize_patient
from repro.data.splits import split_patient
from repro.evaluation.report import render_table
from repro.evaluation.runner import finalize_run, run_patient, tune_run_tr


def test_symbolization_comparison(benchmark):
    spec = PatientSpec(
        "SY1", n_electrodes=16, n_seizures=4, recording_hours=0.1,
        train_seizures=1, seed=41,
    )
    patient = synthesize_patient(spec, hours_scale=1.0, fs=256.0)
    split = split_patient(patient)
    symbolizers = {
        "lbp(6)": LBPSymbolizer(6),
        "hvg(cap 7)": HVGSymbolizer(7),
    }

    def run_all():
        outcomes = {}
        for name, symbolizer in symbolizers.items():
            def factory(n_electrodes, fs, _s=symbolizer):
                return LaelapsDetector(
                    n_electrodes,
                    LaelapsConfig(dim=1_000, fs=fs, seed=5),
                    symbolizer=_s,
                )

            run = run_patient(factory, patient, split=split)
            outcomes[name] = finalize_run(run, tr=tune_run_tr(run)).metrics
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Symbolisation cost alone, one minute of signal.
    segment = patient.recording.data[: int(60 * 256)]
    costs = {}
    for name, symbolizer in symbolizers.items():
        start = time.perf_counter()
        symbolizer.codes(segment)
        costs[name] = time.perf_counter() - start

    print()
    print(render_table(
        ["symboliser", "alphabet", "sens%", "FDR/h", "delay[s]",
         "extract [ms/min]"],
        [
            [name, symbolizers[name].alphabet_size,
             100 * m.sensitivity, m.fdr_per_hour, m.mean_delay_s,
             1e3 * costs[name]]
            for name, m in outcomes.items()
        ],
        title="Symbolisation ablation (Sec. II-A claim)",
        precision=2,
    ))
    lbp, hvg = outcomes["lbp(6)"], outcomes["hvg(cap 7)"]
    # Quality parity: both symbolisers feed the HD pipeline adequately.
    assert lbp.sensitivity >= hvg.sensitivity - 0.25
    assert lbp.n_false_alarms == 0
    # Efficiency: LBP extraction is at least an order of magnitude
    # cheaper (the paper's reason to prefer it).
    assert costs["lbp(6)"] * 10 < costs["hvg(cap 7)"]
