"""Channel scaling of the out-of-core pipeline: 64 to 1024 electrodes.

For each channel count a disk-backed cohort member is synthesised with
:func:`repro.data.outofcore.generate_cohort`, then trained and evaluated
end to end through the *streamed* driver path
(``run_patient(..., chunk_samples=...)``) with real engines.  Two
numbers are recorded per count: decision throughput (windows/s over the
streamed predict sweeps) and peak evaluation memory (tracemalloc, which
counts numpy buffers but not reclaimable memmap pages).  Process peak
RSS (``ru_maxrss``) rides along for context.

The point of the bench is the **RAM-budget contract**: evaluation peak
must stay under ``BUDGET_MB`` at *every* channel count, while the
in-memory path's floor — the batch generator's float64 working array
alone — provably exceeds the budget at high channel counts (recorded
per count as ``c{n}_in_memory_floor_mb``).

The committed repo-root ``BENCH_channel_scaling.json`` is this bench's
full-mode output on the recording host; re-running refreshes it (see
``docs/benchmarking.md``).  ``--smoke`` shrinks the channel grid for
the CI ``perf-trajectory`` job and writes
``BENCH_channel_scaling.smoke.json`` instead.  ``REPRO_BENCH_RECORD``
overrides the output path either way.
"""

from __future__ import annotations

import gc
import os
import resource
import time
import tracemalloc
from pathlib import Path

from benchmarks.conftest import bench_dim, smoke_mode
from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.data.outofcore import (
    CohortSpec,
    MemberSpec,
    default_member_plans,
    generate_cohort,
)
from repro.data.synthetic import SynthesisParams
from repro.evaluation.runner import run_patient

REPO_ROOT = Path(__file__).resolve().parent.parent
#: The committed perf-trajectory baseline this bench writes/compares.
BASELINE_PATH = REPO_ROOT / "BENCH_channel_scaling.json"
#: Out-of-core evaluation ceiling (matches the acceptance test in
#: ``tests/integration/test_outofcore_memory.py``).
BUDGET_MB = 200.0

FS = 256.0
DURATION_S = 240.0
N_SEIZURES = 2
CHUNK_SAMPLES = 2_048


def _channel_grid() -> tuple[int, ...]:
    if smoke_mode():
        return (16, 32)
    return (64, 128, 256, 512, 1024)


def _output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_RECORD")
    if override:
        return Path(override)
    if smoke_mode():
        return REPO_ROOT / "BENCH_channel_scaling.smoke.json"
    return BASELINE_PATH


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_member(n_channels: int, dim: int, root: Path) -> dict[str, float]:
    spec = CohortSpec(
        f"scaling-{n_channels}",
        (
            MemberSpec(
                "m0",
                n_channels,
                DURATION_S,
                default_member_plans(DURATION_S, N_SEIZURES),
                seed=n_channels,
            ),
        ),
        params=SynthesisParams(fs=FS),
        seed=13,
    )
    t0 = time.perf_counter()
    cohort = generate_cohort(spec, root)
    gen_s = time.perf_counter() - t0
    patient = cohort.member("m0").patient()

    def factory(n_electrodes: int, fs: float) -> LaelapsDetector:
        return LaelapsDetector(
            n_electrodes, LaelapsConfig(dim=dim, fs=fs, seed=3)
        )

    gc.collect()
    tracemalloc.start()
    t0 = time.perf_counter()
    run = run_patient(
        factory, patient, method="laelaps", chunk_samples=CHUNK_SAMPLES
    )
    elapsed = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    n_windows = len(run.train_preds) + len(run.test_preds)
    assert n_windows > 0
    n_samples = int(DURATION_S * FS)
    return {
        "windows_per_s": n_windows / elapsed,
        "eval_peak_mb": peak / 1e6,
        "rss_mb": _rss_mb(),
        "gen_s": gen_s,
        "eval_s": elapsed,
        "in_memory_floor_mb": n_samples * n_channels * 8 / 1e6,
    }


def test_channel_scaling_trajectory(tmp_path):
    from repro.evaluation.benchrec import (
        BenchRecord,
        current_git_sha,
        machine_fingerprint,
        read_record,
        render_comparison,
        write_record,
    )
    from repro.hdc.engine import resolve_engine_name

    dim = bench_dim(1_000, smoke=256)
    channels = _channel_grid()
    metrics: dict[str, float] = {}
    print(
        f"\n[channel scaling] {DURATION_S:.0f} s @ {FS:.0f} Hz, d={dim}, "
        f"chunk={CHUNK_SAMPLES}, budget {BUDGET_MB:.0f} MB"
    )
    for n_channels in channels:
        row = _run_member(n_channels, dim, tmp_path / f"c{n_channels}")
        for key, value in row.items():
            metrics[f"c{n_channels}_{key}"] = value
        print(
            f"  {n_channels:>5} ch  {row['windows_per_s']:>8,.0f} windows/s  "
            f"eval peak {row['eval_peak_mb']:>6.1f} MB  "
            f"rss {row['rss_mb']:>7.1f} MB  "
            f"(in-memory floor {row['in_memory_floor_mb']:>7.1f} MB)"
        )
        # The RAM-budget contract, enforced at every scale on any host.
        assert row["eval_peak_mb"] < BUDGET_MB, (
            f"{n_channels} ch: streamed eval peak "
            f"{row['eval_peak_mb']:.0f} MB blows the {BUDGET_MB:.0f} MB budget"
        )
    if not smoke_mode():
        # At the top of the grid the in-memory path cannot fit the
        # budget even before encoding a single window.
        assert metrics["c1024_in_memory_floor_mb"] > 2 * BUDGET_MB

    record = BenchRecord(
        name="channel_scaling",
        machine=machine_fingerprint(),
        git_sha=current_git_sha(),
        engine=resolve_engine_name("auto"),
        config={
            "channels": list(channels),
            "duration_s": DURATION_S,
            "fs": FS,
            "dim": dim,
            "n_seizures": N_SEIZURES,
            "chunk_samples": CHUNK_SAMPLES,
            "budget_mb": BUDGET_MB,
        },
        metrics=metrics,
    )
    out = _output_path()
    write_record(record, out)
    fresh = read_record(out)  # emit/schema gate: always enforced
    print(f"[channel scaling] record written to {out}")

    if not BASELINE_PATH.exists() or out.resolve() == BASELINE_PATH.resolve():
        return
    baseline = read_record(BASELINE_PATH)  # schema errors hard-fail
    print(render_comparison(baseline, fresh))
    print("[channel scaling] deltas are report-only (runner shapes vary)")
