"""E5 — ablation: Laelaps with t_r = 0 (Sec. IV-B).

The paper notes that even with the confidence threshold disabled
(t_r = 0, i.e. no per-patient tuning at all) Laelaps keeps a low FDR of
0.15/h, well below the baselines' 0.31-0.54/h.  This bench
re-postprocesses the stored Table I predictions at t_r = 0 and compares.
"""

from __future__ import annotations

from repro.evaluation.report import render_table
from repro.evaluation.runner import finalize_run


def test_tr_ablation(benchmark, table1_result):
    runs = table1_result.runs["laelaps"]

    def ablate():
        return {pid: finalize_run(run, tr=0.0) for pid, run in runs.items()}

    at_zero = benchmark.pedantic(ablate, rounds=1, iterations=1)

    rows = []
    fa_tuned = fa_zero = 0
    det_tuned = det_zero = 0
    hours = 0.0
    for pid in table1_result.patient_ids():
        tuned = table1_result.results["laelaps"][pid]
        zero = at_zero[pid]
        rows.append([
            pid, tuned.tr,
            tuned.metrics.n_false_alarms, zero.metrics.n_false_alarms,
            100 * tuned.metrics.sensitivity, 100 * zero.metrics.sensitivity,
        ])
        fa_tuned += tuned.metrics.n_false_alarms
        fa_zero += zero.metrics.n_false_alarms
        det_tuned += tuned.metrics.n_detected
        det_zero += zero.metrics.n_detected
        hours += tuned.metrics.interictal_hours
    print()
    print(render_table(
        ["ID", "t_r", "FA(tuned)", "FA(t_r=0)", "sens(tuned)%", "sens(0)%"],
        rows,
        title="Ablation: the patient-specific t_r rule",
        precision=1,
    ))
    print(f"cohort: tuned {fa_tuned} FA ({fa_tuned / hours:.2f}/h), "
          f"t_r=0 {fa_zero} FA ({fa_zero / hours:.2f}/h) "
          f"over {hours:.2f} interictal hours")

    # Shape: tuning removes every false alarm without losing detections.
    assert fa_tuned == 0
    assert fa_zero >= fa_tuned
    assert det_tuned >= det_zero - 1  # tuning must not cost sensitivity
    # Even untuned, Laelaps stays below the worst baseline.
    baselines = [m for m in table1_result.methods() if m != "laelaps"]
    if baselines:
        worst = max(
            table1_result.summary(m)["mean_fdr_per_hour"] for m in baselines
        )
        assert fa_zero / hours <= worst + 1e-9
