"""E7 — Fig. 2 kernel structure and shared-memory sizing (Sec. V-B).

Checks the GPU implementation model: grid shapes of the three kernels,
the item memories fitting the TX2's 64 kB shared memory per SM for every
cohort configuration, and prints the modelled kernel breakdown.
"""

from __future__ import annotations

from repro.data.cohort import cohort_patient_specs
from repro.evaluation.report import render_table
from repro.hw.energy import MethodCostModel
from repro.hw.kernels import laelaps_kernels
from repro.hw.platform import MAXQ


def test_kernel_breakdown(benchmark):
    model = MethodCostModel()
    total_ms, costs = benchmark(
        lambda: model.laelaps_kernel_breakdown(128, dim=1_000)
    )
    print()
    print(render_table(
        ["Kernel", "blocks", "threads", "time[ms]", "bound"],
        [
            [spec.name, spec.blocks, spec.threads_per_block,
             cost.time_ms, cost.bound]
            for spec, cost in zip(laelaps_kernels(128, 1_000), costs)
        ],
        title="Fig. 2 kernels @128 electrodes, d = 1 kbit",
        precision=4,
    ))
    lbp, encoding, classification = laelaps_kernels(128, 1_000)
    assert (lbp.blocks, lbp.threads_per_block) == (128, 256)
    assert (encoding.blocks, encoding.threads_per_block) == (32, 32)
    assert (classification.blocks, classification.threads_per_block) == (1, 32)
    assert total_ms > 0


def test_shared_memory_fits_every_patient(benchmark):
    """Sec. V-B: IM1 + IM2 fit shared memory 'even for the largest
    model configurations considered herein'."""

    def occupancy():
        return {
            spec.patient_id: laelaps_kernels(spec.n_electrodes, dim=1_000)[1]
            for spec in cohort_patient_specs()
        }

    encodings = benchmark(occupancy)
    rows = []
    electrode_counts = {
        s.patient_id: s.n_electrodes for s in cohort_patient_specs()
    }
    for pid, encoding in encodings.items():
        fits = MAXQ.shared_mem_fits(encoding.shared_mem_bytes)
        rows.append([
            pid, electrode_counts[pid],
            encoding.shared_mem_bytes / 1024, "yes" if fits else "NO",
        ])
        assert fits, f"{pid} overflows shared memory"
    print()
    print(render_table(
        ["ID", "Elect", "IM bytes [kB]", "fits 64 kB"],
        rows,
        title="Item-memory shared-memory occupancy per patient",
        precision=1,
    ))
