"""E8 — Sec. V-C scalability: cost vs electrode count.

Paper claim: Laelaps's execution time and energy are almost constant in
the electrode count (12.5 ms @24e vs 13.0 ms @128e) while every baseline
grows linearly — so Laelaps's advantage *widens* with denser
implantations (1.7x -> 3.9x vs the SVM).
"""

from __future__ import annotations

import pytest

from repro.evaluation.report import render_table
from repro.hw.energy import MethodCostModel, electrode_scaling

COUNTS = (24, 32, 48, 64, 96, 128)


def test_electrode_scaling(benchmark):
    model = MethodCostModel()
    sweep = benchmark(lambda: electrode_scaling(COUNTS, model))
    print()
    print(render_table(
        ["Method"] + [f"{n}e" for n in COUNTS],
        [[m] + [e.time_ms for e in ests] for m, ests in sweep.items()],
        title="time per classification [ms] vs electrode count",
        precision=1,
    ))
    laelaps = [e.time_ms for e in sweep["laelaps"]]
    assert max(laelaps) / min(laelaps) < 1.1
    for method in ("svm", "cnn", "lstm"):
        times = [e.time_ms for e in sweep[method]]
        assert times[-1] / times[0] > 2.0

    # The advantage widens monotonically with the electrode count.
    svm_ratio = [
        svm.time_ms / lae.time_ms
        for svm, lae in zip(sweep["svm"], sweep["laelaps"])
    ]
    assert svm_ratio == sorted(svm_ratio)
    assert svm_ratio[0] == pytest.approx(1.7, abs=0.1)
    assert svm_ratio[-1] == pytest.approx(3.9, abs=0.2)
