"""Shared configuration of the benchmark harness.

Heavy experiment benches (Table I and its ablations) run once per
invocation and honour two environment variables:

* ``REPRO_BENCH_SCALE`` — duration-scale divisor of the synthetic
  cohort (default 2880, i.e. one paper-hour becomes 1.25 s).  Use 720
  for the longer runs recorded in EXPERIMENTS.md.
* ``REPRO_BENCH_PATIENTS`` — number of cohort patients (default all 18).

Every bench *prints* the table rows it reproduces; run with ``-s`` to
see them, e.g.::

    pytest benchmarks/ --benchmark-only -s

CI smoke mode
-------------

``pytest benchmarks --smoke`` shrinks every bench to an import-rot
check: the cohort is truncated to two patients, size-aware benches drop
to tiny dimensions/durations (they read ``REPRO_BENCH_SMOKE``, exported
here before collection), and ``pytest-benchmark`` timing loops are
disabled so each benched callable runs exactly once.  The whole
directory finishes in well under two minutes — this is what the CI
benchmark job runs.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="shrink all benches to a fast import/shape check (CI mode)",
    )


@pytest.hookimpl(tryfirst=True)
def pytest_configure(config: pytest.Config) -> None:
    if not config.getoption("--smoke", default=False):
        return
    # Exported before bench modules import, so module-level sizes that
    # consult smoke_mode()/bench_dim() see the reduced configuration.
    os.environ["REPRO_BENCH_SMOKE"] = "1"
    os.environ.setdefault("REPRO_BENCH_PATIENTS", "2")
    # Run every benched callable exactly once, without timing loops.
    if hasattr(config.option, "benchmark_disable"):
        config.option.benchmark_disable = True


def smoke_mode() -> bool:
    """Whether the harness runs in CI smoke (import-rot) mode."""
    return os.environ.get("REPRO_BENCH_SMOKE") == "1"


def bench_scale() -> float:
    """Duration-scale divisor for cohort benches."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "2880"))


def bench_patients() -> int:
    """Number of cohort patients to include."""
    return int(os.environ.get("REPRO_BENCH_PATIENTS", "18"))


def bench_dim(default: int, smoke: int = 256) -> int:
    """Hypervector dimension for size-aware benches."""
    return smoke if smoke_mode() else default


def bench_seconds(default: float, smoke: float = 2.0) -> float:
    """Synthetic-signal duration for size-aware benches."""
    return smoke if smoke_mode() else default


@pytest.fixture(scope="session")
def cohort_specs():
    """The (possibly truncated) cohort spec list for heavy benches."""
    from repro.data.cohort import cohort_patient_specs

    return cohort_patient_specs()[: bench_patients()]


@pytest.fixture(scope="session")
def table1_result(cohort_specs):
    """One full Table I run shared by the Table I bench and ablations."""
    from repro.evaluation.table1 import default_methods, run_table1

    return run_table1(
        default_methods(dim=1_000),
        cohort_specs,
        hours_scale=1.0 / bench_scale(),
    )
