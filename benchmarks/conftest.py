"""Shared configuration of the benchmark harness.

Heavy experiment benches (Table I and its ablations) run once per
invocation and honour two environment variables:

* ``REPRO_BENCH_SCALE`` — duration-scale divisor of the synthetic
  cohort (default 2880, i.e. one paper-hour becomes 1.25 s).  Use 720
  for the longer runs recorded in EXPERIMENTS.md.
* ``REPRO_BENCH_PATIENTS`` — number of cohort patients (default all 18).

Every bench *prints* the table rows it reproduces; run with ``-s`` to
see them, e.g.::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """Duration-scale divisor for cohort benches."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "2880"))


def bench_patients() -> int:
    """Number of cohort patients to include."""
    return int(os.environ.get("REPRO_BENCH_PATIENTS", "18"))


@pytest.fixture(scope="session")
def cohort_specs():
    """The (possibly truncated) cohort spec list for heavy benches."""
    from repro.data.cohort import cohort_patient_specs

    return cohort_patient_specs()[: bench_patients()]


@pytest.fixture(scope="session")
def table1_result(cohort_specs):
    """One full Table I run shared by the Table I bench and ablations."""
    from repro.evaluation.table1 import default_methods, run_table1

    return run_table1(
        default_methods(dim=1_000),
        cohort_specs,
        hours_scale=1.0 / bench_scale(),
    )
