"""Sharded serving: multi-process gateway vs one in-process manager.

The :class:`~repro.serve.ShardedStreamGateway` exists to put more cores
behind a session fleet: each shard worker runs its own
:class:`~repro.core.sessions.StreamSessionManager` in a child process,
so per-tick encoding and the grouped packed sweep of different shards
overlap.  This bench drives the same fleet (16 patients, golden-model
dimension, 0.5 s ticks) through

* one in-process ``StreamSessionManager`` (the PR-2 single-process
  ceiling), and
* the gateway with 4 process workers,

checks every event is bit-identical, and reports windows/s for both.
On a host with >= 4 usable cores the sharded fleet must reach at least
``MIN_SPEEDUP`` x the single-process throughput; on smaller hosts the
ratio is reported but not asserted (IPC with no spare cores to hide it
is a strictly losing trade, and that is expected).

Run directly with ``pytest benchmarks/bench_serve_sharded.py -s``;
``--smoke`` shrinks the fleet for the CI import-rot job (2 workers,
tiny dimension — it still exercises the full process transport).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._gating import gate_speedup, usable_cores
from benchmarks.conftest import bench_dim, bench_seconds, smoke_mode
from repro.core.config import GOLDEN_DIM, LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.sessions import StreamSessionManager
from repro.hdc.backend import pack_bits, random_bits
from repro.serve import ShardedStreamGateway

DIM = bench_dim(GOLDEN_DIM, smoke=512)
N_SESSIONS = 4 if smoke_mode() else 16
N_WORKERS = 2 if smoke_mode() else 4
SECONDS = bench_seconds(12.0, smoke=2.0)
FS = 256.0
N_ELECTRODES = 12
#: Required sharded-vs-single throughput ratio at 4 workers (>= 4 cores).
MIN_SPEEDUP = 2.0


def _build_fleet():
    rng = np.random.default_rng(7)
    detectors = {}
    signals = {}
    for i in range(N_SESSIONS):
        config = LaelapsConfig(
            dim=DIM, fs=FS, seed=21 + i, backend="packed", tc=6
        )
        detector = LaelapsDetector(N_ELECTRODES, config)
        detector.fit_from_windows(
            pack_bits(random_bits(DIM, rng)), pack_bits(random_bits(DIM, rng))
        )
        detectors[f"p{i}"] = detector
        signals[f"p{i}"] = rng.standard_normal(
            (int(SECONDS * FS), N_ELECTRODES)
        )
    return detectors, signals


def test_sharded_gateway_matches_and_scales():
    detectors, signals = _build_fleet()
    chunk = int(FS // 2)  # one 0.5 s block per tick: the real-time shape

    def single_process():
        manager = StreamSessionManager()
        for sid, detector in detectors.items():
            manager.open(sid, detector)
        return manager.run(signals, chunk)

    def sharded():
        with ShardedStreamGateway(N_WORKERS, mode="process") as gateway:
            for sid, detector in detectors.items():
                gateway.open(sid, detector)
            return gateway.run(signals, chunk)

    start = time.perf_counter()
    reference = single_process()
    single_s = time.perf_counter() - start
    start = time.perf_counter()
    events = sharded()
    sharded_s = time.perf_counter() - start
    for sid in detectors:
        assert events[sid] == reference[sid]

    n_windows = sum(len(v) for v in reference.values())
    assert n_windows > 0
    speedup = single_s / sharded_s
    print(
        f"\n[serve sharded] d={DIM}, {N_SESSIONS} sessions x {SECONDS:.0f} s "
        f"({n_windows} windows), {usable_cores()} cores: single process "
        f"{single_s:.2f} s ({n_windows / single_s:,.0f} windows/s), "
        f"{N_WORKERS} process workers {sharded_s:.2f} s "
        f"({n_windows / sharded_s:,.0f} windows/s) = {speedup:.2f}x"
    )
    gate_speedup(
        speedup,
        MIN_SPEEDUP,
        min_cores=N_WORKERS,
        label="serve sharded",
        detail=f"sharded fleet vs single-process at {N_WORKERS} workers",
    )
