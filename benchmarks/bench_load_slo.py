"""Load harness with latency SLOs: the perf-trajectory instrument.

Drives :class:`~repro.serve.loadgen.LoadGenerator` — many concurrent
clocked-source patient sessions against a
:class:`~repro.serve.ShardedStreamGateway` — and serialises the result
to the versioned benchmark-record schema
(:mod:`repro.evaluation.benchrec`).  The committed repo-root
``BENCH_load_slo.json`` is this bench's full-mode output on the
recording host; re-running the bench refreshes it (see
``docs/benchmarking.md``).

Every run is also an **SLO check**: when a committed baseline exists,
the fresh record is compared against it and the per-metric deltas are
printed.  The comparison is report-only by default (runner shapes
vary); schema violations and emit failures are always hard errors, and
setting ``REPRO_SLO_ENFORCE=1`` additionally asserts the throughput /
p99-latency floors below — gated through
:func:`benchmarks._gating.gate_speedup` on the *baseline host's* core
count, so a smaller machine reports instead of failing.

Run directly with ``pytest benchmarks/bench_load_slo.py -s``;
``--smoke`` shrinks the fleet for the CI ``perf-trajectory`` job and
writes the record to ``BENCH_load_slo.smoke.json`` instead of the
committed baseline.  ``REPRO_BENCH_RECORD`` overrides the output path
either way.
"""

from __future__ import annotations

import os
from pathlib import Path

from benchmarks._gating import gate_speedup, usable_cores
from benchmarks.conftest import smoke_mode
from repro.serve.loadgen import LoadConfig, run_load_test

REPO_ROOT = Path(__file__).resolve().parent.parent
#: The committed perf-trajectory baseline this bench writes/compares.
BASELINE_PATH = REPO_ROOT / "BENCH_load_slo.json"
#: Opt-in SLO floors (fresh vs baseline): throughput may drop to 2/3,
#: p99 tick latency may grow to 1.5x, before the enforced check fails.
SLO_THROUGHPUT_FLOOR = 0.67
SLO_P99_FLOOR = 0.67


def _config() -> LoadConfig:
    if smoke_mode():
        return LoadConfig(
            n_sessions=8,
            n_electrodes=8,
            dim=256,
            n_ticks=12,
            warmup_ticks=3,
            n_workers=2,
            mode="inline",
            seed=1,
        )
    cores = usable_cores()
    # Enough measured ticks to resolve every reported tail percentile:
    # nearest-rank p99.9 needs min_samples_for_percentile(99.9) = 1001
    # samples, below which p99 == p99.9 == max and the record tracks a
    # degenerate tail (the harness warns in that case).
    return LoadConfig(
        n_sessions=256,
        n_electrodes=16,
        dim=2_000,
        n_ticks=1_024,
        warmup_ticks=8,
        n_workers=4 if cores >= 4 else 2,
        mode="process" if cores >= 4 else "inline",
        seed=1,
    )


def _output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_RECORD")
    if override:
        return Path(override)
    if smoke_mode():
        return REPO_ROOT / "BENCH_load_slo.smoke.json"
    return BASELINE_PATH


def test_load_slo_trajectory():
    from repro.evaluation.benchrec import (
        read_record,
        render_comparison,
        write_record,
    )

    config = _config()
    report = run_load_test(config, progress=lambda m: print(f"[load slo] {m}"))
    metrics = report.metrics

    # Harness invariants — these hold on any host, so they hard-fail.
    assert metrics["dropped_sessions"] == 0, (
        f"{metrics['dropped_sessions']:.0f} sessions produced no events"
    )
    assert (
        metrics["tick_latency_p50_ms"]
        <= metrics["tick_latency_p99_ms"]
        <= metrics["tick_latency_p99_9_ms"]
    )
    assert metrics["throughput_windows_per_s"] > 0
    # One drain per cycle against a bounded queue: backpressure must
    # begin exactly one chunk past the queue bound.
    assert metrics["backpressure_onset_chunks"] == config.max_pending + 1

    out = _output_path()
    write_record(report.record("load_slo"), out)
    fresh = read_record(out)  # emit/schema gate: always enforced
    print(
        f"\n[load slo] {config.n_sessions} sessions x {config.n_ticks} "
        f"ticks on {config.n_workers} {config.mode} workers "
        f"({report.engine}): p50 {metrics['tick_latency_p50_ms']:.2f} ms, "
        f"p99 {metrics['tick_latency_p99_ms']:.2f} ms, p99.9 "
        f"{metrics['tick_latency_p99_9_ms']:.2f} ms, "
        f"{metrics['throughput_windows_per_s']:,.0f} windows/s, "
        f"backpressure onset {metrics['backpressure_onset_chunks']:.0f} "
        f"chunks, worker-cycle recovery "
        f"{metrics.get('worker_cycle_recovery_s', float('nan')):.3f} s"
    )
    print(f"[load slo] record written to {out}")

    if not BASELINE_PATH.exists() or out.resolve() == BASELINE_PATH.resolve():
        return
    baseline = read_record(BASELINE_PATH)  # schema errors hard-fail
    print(render_comparison(baseline, fresh))
    if os.environ.get("REPRO_SLO_ENFORCE") != "1":
        print("[load slo] deltas are report-only (REPRO_SLO_ENFORCE!=1)")
        return
    baseline_cores = int(baseline.machine.get("cpu_count", 1))
    gate_speedup(
        fresh.metrics["throughput_windows_per_s"]
        / baseline.metrics["throughput_windows_per_s"],
        SLO_THROUGHPUT_FLOOR,
        min_cores=baseline_cores,
        label="load slo",
        detail="fresh throughput vs committed baseline",
    )
    gate_speedup(
        baseline.metrics["tick_latency_p99_ms"]
        / fresh.metrics["tick_latency_p99_ms"],
        SLO_P99_FLOOR,
        min_cores=baseline_cores,
        label="load slo",
        detail="fresh p99 tick latency vs committed baseline",
    )
