"""E10 — ablation: the t_c vote length vs detection delay (Sec. VI).

The paper fixes t_c = 10 consecutive ictal labels, accepting a ~5.5 s
postprocessing floor on the delay to filter false alarms, and names
"reducing the delay" as future work.  This bench quantifies that
trade-off by re-postprocessing stored cohort predictions at smaller
t_c: the delay shrinks roughly 0.5 s per removed label while the
false-alarm exposure grows.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.report import render_table
from repro.evaluation.runner import finalize_run, tune_run_tr

TC_VALUES = (4, 6, 8, 10)


def test_tc_tradeoff(benchmark, table1_result):
    runs = table1_result.runs["laelaps"]

    def sweep():
        table = {}
        for tc in TC_VALUES:
            delays, false_alarms, detected, seizures, hours = [], 0, 0, 0, 0.0
            for run in runs.values():
                tr = tune_run_tr(run, tc=tc)
                res = finalize_run(run, tr=tr, tc=tc)
                delays.extend(res.metrics.delays_s)
                false_alarms += res.metrics.n_false_alarms
                detected += res.metrics.n_detected
                seizures += res.metrics.n_seizures
                hours += res.metrics.interictal_hours
            table[tc] = {
                "mean_delay": float(np.mean(delays)) if delays else float("nan"),
                "false_alarms": false_alarms,
                "fdr": false_alarms / hours if hours else float("nan"),
                "detected": detected,
                "seizures": seizures,
            }
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["t_c", "mean delay [s]", "detected", "FA", "FDR [/h]"],
        [
            [tc, row["mean_delay"],
             f"{row['detected']}/{row['seizures']}",
             row["false_alarms"], row["fdr"]]
            for tc, row in table.items()
        ],
        title="t_c ablation: delay vs false-alarm exposure",
    ))
    # Delay decreases monotonically as the vote shortens.
    delays = [table[tc]["mean_delay"] for tc in TC_VALUES]
    assert all(a <= b + 1e-9 for a, b in zip(delays, delays[1:]))
    # The paper's operating point keeps zero false alarms.
    assert table[10]["false_alarms"] == 0
    # Shorter votes never *reduce* false-alarm exposure.
    fas = [table[tc]["false_alarms"] for tc in TC_VALUES]
    assert all(a >= b for a, b in zip(fas, fas[1:]))
    # Detection counts stay intact across the sweep (the vote length
    # delays alarms; it does not lose clinical seizures).
    assert len({table[tc]["detected"] for tc in TC_VALUES}) <= 2
