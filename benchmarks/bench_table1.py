"""E1 — Table I: per-patient delay / FDR / sensitivity, all four methods.

Regenerates the paper's headline table on the synthetic cohort.  The
numbers being chased (shape, not absolutes — see EXPERIMENTS.md):

* Laelaps: 79/92 detected seizures, FDR 0.00/h on every patient, mean
  sensitivity ~85.5 %;
* baselines detect fewer/equal seizures with *nonzero* FDR, ordered
  Laelaps < SVM < CNN/LSTM;
* the per-patient sensitivity pattern (P4 66.7 %, P6 85.7 %, P7 50 %,
  P9 81 %, P13 80 %, P14 0 %, P18 75 %).

Scale knobs: REPRO_BENCH_SCALE (default 2880), REPRO_BENCH_PATIENTS.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_patients, bench_scale


def test_table1_full(benchmark, cohort_specs):
    """Run the Table I experiment once and print the table."""
    from repro.evaluation.table1 import default_methods, run_table1

    def run():
        return run_table1(
            default_methods(dim=1_000),
            cohort_specs,
            hours_scale=1.0 / bench_scale(),
            keep_runs=False,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.render())
    summaries = {m: result.summary(m) for m in result.methods()}
    for method, summary in summaries.items():
        print(
            f"{method:>8}: {summary['detected']:.0f}/"
            f"{summary['test_seizures']:.0f} detected, "
            f"mean FDR {summary['mean_fdr_per_hour']:.2f}/h, "
            f"mean sens {100 * summary['mean_sensitivity']:.1f} %, "
            f"mean delay {summary['mean_delay_s']:.1f} s"
        )

    laelaps = summaries["laelaps"]
    # Laelaps headline: zero false alarms across the cohort.
    assert laelaps["false_alarms"] == 0.0
    # Detection shape: when the full cohort runs, 79/92 (the subtle
    # seizures are missed by design); truncated runs scale accordingly.
    if bench_patients() == 18:
        assert laelaps["detected"] == pytest.approx(79.0, abs=3.0)
        assert laelaps["test_seizures"] == 92.0
        assert laelaps["mean_sensitivity"] == pytest.approx(0.855, abs=0.04)
    # Every baseline false-alarms somewhere; Laelaps has the lowest FDR.
    for method in ("svm", "cnn", "lstm"):
        if method in summaries:
            assert (
                summaries[method]["mean_fdr_per_hour"]
                >= laelaps["mean_fdr_per_hour"]
            )
