"""E4 — Fig. 3: mean FDR vs energy per classification, 64 electrodes.

The scatter's message: Laelaps sits in the bottom-left (lowest energy
*and* zero FDR); the SVM is the best baseline (2 orders of magnitude
less energy than the deep-learning methods) yet Laelaps still beats it
by ~1.9x in energy with strictly fewer false alarms.

Printed with both the paper's measured mean FDRs and — when a Table I
run is available in this invocation — the cohort FDRs measured here.
"""

from __future__ import annotations

from repro.evaluation.report import render_table
from repro.hw.energy import MethodCostModel, fig3_points


def test_fig3(benchmark):
    model = MethodCostModel()
    points = benchmark(lambda: fig3_points(model=model))
    print()
    print(render_table(
        ["Method", "Res", "energy[mJ]", "FDR[/h] (paper means)"],
        [[p["method"], p["resource"], p["energy_mj"], p["fdr_per_hour"]]
         for p in points],
        title="Fig. 3 (reproduction), 64 electrodes",
    ))
    by_method = {p["method"]: p for p in points}
    laelaps = by_method["laelaps"]
    # Pareto dominance of Laelaps.
    for method in ("svm", "cnn", "lstm"):
        assert by_method[method]["energy_mj"] > laelaps["energy_mj"]
        assert by_method[method]["fdr_per_hour"] >= laelaps["fdr_per_hour"]
    # Sec. V-C: ~1.9x lower energy than the SVM at 64 electrodes.
    ratio = by_method["svm"]["energy_mj"] / laelaps["energy_mj"]
    assert 1.6 < ratio < 2.4


def test_fig3_with_measured_fdr(benchmark, table1_result):
    """Fig. 3 with this repository's own measured cohort FDRs."""
    fdrs = {
        method: table1_result.summary(method)["mean_fdr_per_hour"]
        for method in table1_result.methods()
    }
    points = benchmark(lambda: fig3_points(fdr_by_method=fdrs))
    print()
    print(render_table(
        ["Method", "energy[mJ]", "FDR[/h] (measured here)"],
        [[p["method"], p["energy_mj"], p["fdr_per_hour"]] for p in points],
        title="Fig. 3 with measured synthetic-cohort FDRs",
    ))
    by_method = {p["method"]: p for p in points}
    assert by_method["laelaps"]["fdr_per_hour"] == 0.0
    for method in ("svm", "cnn", "lstm"):
        if method in by_method:
            assert by_method[method]["fdr_per_hour"] >= 0.0
