"""Multi-patient stream serving: batched sweep vs per-stream loop.

The :class:`~repro.core.sessions.StreamSessionManager` serves N
concurrent patient streams and classifies the H vectors of *all*
sessions per tick in one grouped XOR + popcount sweep instead of one
tiny query per stream.  This bench measures both layers of that claim:

* the classification stage alone, in the real-time serving shape (one
  window per session per 0.5 s tick): the grouped cross-session sweep
  against a per-session ``classify_packed`` loop — asserted to be at
  least 3x faster;
* the end-to-end engine: ``StreamSessionManager.run`` against driving
  each ``StreamingLaelaps`` alone, bit-exactness of every event checked
  on the way (encoding dominates here, so the end-to-end speedup is
  reported rather than asserted).

Run directly with ``pytest benchmarks/bench_stream_sessions.py -s``;
``--smoke`` shrinks the sizes for the CI import-rot job.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import bench_dim, bench_seconds, smoke_mode
from repro.core.config import GOLDEN_DIM, LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.sessions import StreamSessionManager
from repro.core.streaming import StreamingLaelaps
from repro.hdc.associative import AssociativeMemory, grouped_classify_packed
from repro.hdc.backend import pack_bits, random_bits

DIM = bench_dim(GOLDEN_DIM, smoke=512)
N_SESSIONS = 4 if smoke_mode() else 16
N_TICKS = 16 if smoke_mode() else 256
FS = 256.0
N_ELECTRODES = 12
#: Acceptance floor for the grouped sweep vs the per-session loop.
MIN_SPEEDUP = 3.0


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_grouped_sweep_beats_per_session_loop():
    """Classification stage, serving shape: N sessions x 1 window/tick."""
    rng = np.random.default_rng(0)
    memories = []
    for _ in range(N_SESSIONS):
        memory = AssociativeMemory(DIM)
        memory.store(0, random_bits(DIM, rng))
        memory.store(1, random_bits(DIM, rng))
        memories.append(memory)
    # One packed H vector per session per tick.
    queries = pack_bits(random_bits((N_TICKS, N_SESSIONS, DIM), rng))
    stack = np.stack([m.packed_block()[0] for m in memories])
    table = np.stack([m.packed_block()[1] for m in memories])
    owners = np.arange(N_SESSIONS, dtype=np.intp)

    def per_session_loop():
        labels = np.empty((N_TICKS, N_SESSIONS), dtype=np.int64)
        for t in range(N_TICKS):
            for s, memory in enumerate(memories):
                labels[t, s], _ = memory.classify_packed(queries[t, s])
        return labels

    def grouped_sweep():
        labels = np.empty((N_TICKS, N_SESSIONS), dtype=np.int64)
        for t in range(N_TICKS):
            labels[t], _ = grouped_classify_packed(
                queries[t], stack, owners, table
            )
        return labels

    np.testing.assert_array_equal(per_session_loop(), grouped_sweep())
    repeats = 1 if smoke_mode() else 3
    loop_s = _best_of(repeats, per_session_loop)
    grouped_s = _best_of(repeats, grouped_sweep)
    speedup = loop_s / grouped_s
    print(
        f"\n[stream sessions] d={DIM}, {N_SESSIONS} sessions x "
        f"{N_TICKS} ticks: per-session loop {loop_s * 1e3:.1f} ms, "
        f"grouped sweep {grouped_s * 1e3:.1f} ms ({speedup:.1f}x)"
    )
    if not smoke_mode():
        assert speedup >= MIN_SPEEDUP, (
            f"grouped cross-session sweep only {speedup:.1f}x faster than "
            f"the per-session loop (floor {MIN_SPEEDUP}x)"
        )


def test_manager_end_to_end_matches_and_reports():
    """Whole engine: manager vs per-stream loop, bit-exact, timed."""
    seconds = bench_seconds(20.0, smoke=3.0)
    n_sessions = 3 if smoke_mode() else 8
    rng = np.random.default_rng(1)
    detectors = {}
    signals = {}
    for i in range(n_sessions):
        config = LaelapsConfig(
            dim=DIM, fs=FS, seed=5 + i, backend="packed", tc=6
        )
        detector = LaelapsDetector(N_ELECTRODES, config)
        detector.fit_from_windows(
            pack_bits(random_bits(DIM, rng)), pack_bits(random_bits(DIM, rng))
        )
        detectors[f"p{i}"] = detector
        signals[f"p{i}"] = rng.standard_normal(
            (int(seconds * FS), N_ELECTRODES)
        )
    chunk = int(FS // 2)  # one 0.5 s block per tick: the real-time shape

    def per_stream():
        return {
            sid: StreamingLaelaps(det).run(signals[sid], chunk)
            for sid, det in detectors.items()
        }

    def batched():
        manager = StreamSessionManager()
        for sid, det in detectors.items():
            manager.open(sid, det)
        return manager.run(signals, chunk)

    reference = per_stream()
    events = batched()
    for sid in detectors:
        assert events[sid] == reference[sid]
    repeats = 1 if smoke_mode() else 3
    loop_s = _best_of(repeats, per_stream)
    batched_s = _best_of(repeats, batched)
    n_windows = sum(len(v) for v in reference.values())
    print(
        f"\n[stream sessions e2e] d={DIM}, {n_sessions} patients, "
        f"{seconds:.0f} s each ({n_windows} windows): per-stream "
        f"{loop_s:.2f} s, batched manager {batched_s:.2f} s "
        f"({loop_s / batched_s:.2f}x, "
        f"{n_windows / batched_s:,.0f} windows/s)"
    )
    assert n_windows > 0
