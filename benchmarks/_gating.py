"""Machine-shape gating shared by every throughput-asserting bench.

Performance floors only hold on hosts whose shape can carry them: a
multi-process speedup needs spare cores, a timing-sensitive ratio needs
more than one core so the OS scheduler is not part of the measurement.
Every bench that asserts a floor routes through :func:`gate_speedup`
instead of re-implementing its own core-count check — in smoke mode or
on too-small hosts the measured ratio is *reported* (so the number
still lands in CI logs) but not asserted.
"""

from __future__ import annotations

import os

from benchmarks.conftest import smoke_mode


def usable_cores() -> int:
    """Core count the gating decisions are based on."""
    return os.cpu_count() or 1


def gate_speedup(
    speedup: float,
    floor: float,
    *,
    min_cores: int,
    label: str,
    detail: str = "",
) -> bool:
    """Assert ``speedup >= floor`` only where the host shape allows it.

    Args:
        speedup: The measured ratio.
        floor: The acceptance floor.
        min_cores: Smallest core count on which the floor is meaningful.
        label: Bench name for the printed report lines.
        detail: Optional context appended to the assertion message.

    Returns:
        True if the floor was actually asserted, False if the check was
        report-only (smoke mode or a too-small host).

    Raises:
        AssertionError: If the floor was asserted and missed.
    """
    if smoke_mode():
        return False
    cores = usable_cores()
    if cores < min_cores:
        print(
            f"[{label}] only {cores} core(s) available; the "
            f">={floor}x floor needs {min_cores} — reported, not asserted"
        )
        return False
    assert speedup >= floor, (
        f"[{label}] only {speedup:.2f}x (floor {floor}x)"
        + (f"; {detail}" if detail else "")
    )
    return True
