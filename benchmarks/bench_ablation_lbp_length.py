"""E6 — design-choice ablation: LBP code length l (Sec. III-A).

The paper states codes of length 4-8 perform almost identically and
fixes l = 6 as the delay/window trade-off.  This bench sweeps l on one
synthetic patient and verifies the plateau: sensitivity stays at 100 %
with zero false alarms across the range.
"""

from __future__ import annotations

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.data.cohort import PatientSpec, synthesize_patient
from repro.data.splits import split_patient
from repro.evaluation.report import render_table
from repro.evaluation.runner import finalize_run, run_patient, tune_run_tr

LENGTHS = (4, 5, 6, 7, 8)


def test_lbp_length_plateau(benchmark):
    spec = PatientSpec(
        "LB1", n_electrodes=16, n_seizures=4, recording_hours=0.12,
        train_seizures=1, seed=61,
    )
    # l = 8 needs a window larger than 256 symbols, so this ablation
    # runs at the paper's native 512 Hz (window = 512 samples).
    patient = synthesize_patient(spec, hours_scale=1.0, fs=512.0)
    split = split_patient(patient)

    def sweep():
        outcomes = {}
        for length in LENGTHS:
            def factory(n_electrodes: int, fs: float, _l=length):
                return LaelapsDetector(
                    n_electrodes,
                    LaelapsConfig(dim=1_000, fs=fs, lbp_length=_l, seed=5),
                )

            run = run_patient(factory, patient, split=split)
            outcomes[length] = finalize_run(run, tr=tune_run_tr(run)).metrics
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["l", "alphabet", "sens%", "FDR/h", "delay[s]"],
        [
            [length, 1 << length, 100 * m.sensitivity, m.fdr_per_hour,
             m.mean_delay_s]
            for length, m in outcomes.items()
        ],
        title="LBP code-length ablation (Sec. III-A)",
        precision=2,
    ))
    for length, metrics in outcomes.items():
        assert metrics.sensitivity == 1.0, f"l={length} lost sensitivity"
        assert metrics.n_false_alarms == 0, f"l={length} false-alarmed"
