"""Packed-domain inference throughput (the paper's deployment shape).

The energy story of the paper rests on never leaving the packed bit
domain: word-packed hypervectors are XORed and popcounted without
unpacking.  This bench measures that claim's software analogue at the
golden-model dimension d = 10000:

* the batched packed associative-memory sweep (one vectorized
  XOR+popcount query over the whole ``(n_windows, words)`` block)
  against the naive per-window unpacked Python loop — asserted to be at
  least 5x faster;
* the full packed pipeline (LBP codes to labels) against the unpacked
  backend, bit-exactness checked on the way.

Run directly with ``pytest benchmarks/bench_packed_inference.py -s``;
``--smoke`` shrinks the sizes for the CI import-rot job.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import bench_dim, smoke_mode
from repro.core.config import GOLDEN_DIM, LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.hdc.associative import AssociativeMemory
from repro.hdc.backend import pack_bits, random_bits

DIM = bench_dim(GOLDEN_DIM, smoke=512)
N_WINDOWS = bench_dim(2_000, smoke=64)
FS = 256.0
N_ELECTRODES = 32
#: Acceptance floor for the batched packed sweep vs the per-window loop.
MIN_SPEEDUP = 5.0


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _fitted_memory(rng: np.random.Generator) -> AssociativeMemory:
    memory = AssociativeMemory(DIM)
    memory.store(0, random_bits(DIM, rng))
    memory.store(1, random_bits(DIM, rng))
    return memory


def test_batched_packed_queries_beat_perwindow_loop():
    rng = np.random.default_rng(0)
    memory = _fitted_memory(rng)
    windows = random_bits((N_WINDOWS, DIM), rng)
    packed = pack_bits(windows)

    def per_window_loop():
        labels = np.empty(N_WINDOWS, dtype=np.int64)
        for i in range(N_WINDOWS):
            labels[i], _ = memory.classify(windows[i])
        return labels

    loop_labels = per_window_loop()
    batched_labels, _ = memory.classify_packed(packed)
    np.testing.assert_array_equal(batched_labels, loop_labels)

    repeats = 1 if smoke_mode() else 3
    loop_s = _best_of(repeats, per_window_loop)
    batched_s = _best_of(repeats, lambda: memory.classify_packed(packed))
    speedup = loop_s / batched_s
    rate = N_WINDOWS / batched_s
    print(
        f"\n[packed inference] d={DIM}, {N_WINDOWS} windows: "
        f"per-window loop {loop_s * 1e3:.1f} ms, "
        f"batched packed sweep {batched_s * 1e3:.2f} ms "
        f"({speedup:.0f}x, {rate:,.0f} windows/s)"
    )
    if not smoke_mode():
        assert speedup >= MIN_SPEEDUP, (
            f"batched packed sweep only {speedup:.1f}x faster than the "
            f"per-window unpacked loop (floor {MIN_SPEEDUP}x)"
        )


def test_packed_pipeline_end_to_end():
    """LBP codes to labels on both backends: bit-exact, timed."""
    seconds = 2.0 if smoke_mode() else 10.0
    rng = np.random.default_rng(1)
    signal = rng.standard_normal((int(seconds * FS), N_ELECTRODES))
    prototypes = random_bits((2, DIM), rng)

    timings = {}
    predictions = {}
    for backend in ("unpacked", "packed"):
        config = LaelapsConfig(dim=DIM, fs=FS, seed=1, backend=backend)
        detector = LaelapsDetector(N_ELECTRODES, config)
        detector.fit_from_windows(prototypes[0], prototypes[1])
        predictions[backend] = detector.predict(signal)
        timings[backend] = _best_of(1, lambda: detector.predict(signal))

    np.testing.assert_array_equal(
        predictions["unpacked"].labels, predictions["packed"].labels
    )
    np.testing.assert_array_equal(
        predictions["unpacked"].distances, predictions["packed"].distances
    )
    n_windows = len(predictions["packed"])
    print(
        f"\n[packed pipeline] d={DIM}, {seconds:.0f} s of signal "
        f"({n_windows} windows): unpacked {timings['unpacked']:.2f} s, "
        f"packed {timings['packed']:.2f} s"
    )
    assert n_windows > 0
