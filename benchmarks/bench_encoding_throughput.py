"""E9 (supporting) — software throughput of the pipeline stages.

Not a paper artefact per se, but the measurement backing every heavy
bench in this repo: LBP symbolisation, HD spatial/temporal encoding, and
associative-memory queries per second of signal.  Useful for sizing
REPRO_BENCH_SCALE and for regression-tracking the encoder fast path.

The packed variants run the same stages entirely in the uint64 word
domain (carry-save compressor tree + XOR/popcount), so this file doubles
as the packed-vs-unpacked backend comparison; ``--smoke`` shrinks every
size for the CI import-rot job.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_dim, bench_seconds
from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.hdc.associative import AssociativeMemory
from repro.hdc.backend import (
    hamming_distance_packed,
    pack_bits,
    random_bits,
)
from repro.hdc.item_memory import ItemMemory
from repro.hdc.spatial import SpatialEncoder
from repro.hdc.spatial_packed import PackedSpatialEncoder
from repro.hdc.temporal import encode_recording
from repro.hdc.temporal_packed import encode_recording_packed
from repro.lbp.codes import lbp_codes_multichannel
from repro.signal.windows import WindowSpec

FS = 256.0
N_ELECTRODES = 64
DIM = bench_dim(1_000, smoke=256)
SECONDS = bench_seconds(10, smoke=2)
N_QUERIES = bench_dim(2_000, smoke=64)


@pytest.fixture(scope="module")
def signal(rng=None):
    generator = np.random.default_rng(0)
    return generator.standard_normal((int(SECONDS * FS), N_ELECTRODES))


@pytest.fixture(scope="module")
def codes(signal):
    return lbp_codes_multichannel(signal, 6)


def test_lbp_throughput(benchmark, signal):
    result = benchmark(lambda: lbp_codes_multichannel(signal, 6))
    assert result.shape[1] == N_ELECTRODES


def test_spatial_temporal_encoding_throughput(benchmark, codes):
    spatial = SpatialEncoder(
        ItemMemory(64, DIM, seed=1), ItemMemory(N_ELECTRODES, DIM, seed=2)
    )
    spec = WindowSpec.from_seconds(1.0, 0.5, FS)
    h = benchmark(lambda: encode_recording(codes, spatial, spec))
    assert h.shape[1] == DIM


def test_packed_spatial_temporal_encoding_throughput(benchmark, codes):
    """Same stage as above but never leaving the packed word domain."""
    spatial = PackedSpatialEncoder(
        ItemMemory(64, DIM, seed=1), ItemMemory(N_ELECTRODES, DIM, seed=2)
    )
    spec = WindowSpec.from_seconds(1.0, 0.5, FS)
    h = benchmark(lambda: encode_recording_packed(codes, spatial, spec))
    assert h.shape[1] == spatial.words


def test_am_query_throughput(benchmark):
    memory = AssociativeMemory(DIM)
    generator = np.random.default_rng(3)
    memory.store(0, random_bits(DIM, generator))
    memory.store(1, random_bits(DIM, generator))
    queries = random_bits((N_QUERIES, DIM), generator)
    labels, _ = benchmark(lambda: memory.classify(queries))
    assert labels.shape == (N_QUERIES,)


def test_am_query_throughput_packed(benchmark):
    """Batched packed queries: one XOR+popcount sweep, no pack_bits."""
    memory = AssociativeMemory(DIM)
    generator = np.random.default_rng(3)
    memory.store(0, random_bits(DIM, generator))
    memory.store(1, random_bits(DIM, generator))
    queries = pack_bits(random_bits((N_QUERIES, DIM), generator))
    labels, _ = benchmark(lambda: memory.classify_packed(queries))
    assert labels.shape == (N_QUERIES,)


def test_end_to_end_classification_rate(benchmark, signal):
    detector = LaelapsDetector(
        N_ELECTRODES, LaelapsConfig(dim=DIM, fs=FS, seed=1)
    )
    generator = np.random.default_rng(4)
    detector.fit_from_windows(
        random_bits(DIM, generator), random_bits(DIM, generator)
    )
    preds = benchmark(lambda: detector.predict(signal))
    # Real-time factor: windows emitted per wall-clock second must beat
    # the 2 windows/s the stream produces (asserted loosely; the bench
    # table records the actual figure).
    assert len(preds) > 0


def test_end_to_end_classification_rate_packed(benchmark, signal):
    """The full pipeline on the packed backend (LBP codes to labels)."""
    detector = LaelapsDetector(
        N_ELECTRODES, LaelapsConfig(dim=DIM, fs=FS, seed=1, backend="packed")
    )
    generator = np.random.default_rng(4)
    proto = pack_bits(random_bits((2, DIM), generator))
    detector.fit_from_windows(proto[0], proto[1])
    preds = benchmark(lambda: detector.predict(signal))
    assert len(preds) > 0


def test_packed_hamming_throughput(benchmark):
    generator = np.random.default_rng(5)
    a = pack_bits(random_bits((4_096, DIM), generator))
    b = pack_bits(random_bits(DIM, generator))

    dists = benchmark(lambda: hamming_distance_packed(a, b[None, :]))
    assert dists.shape == (4_096,)
