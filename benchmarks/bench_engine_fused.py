"""Fused encode→classify engine vs the batched packed sweep.

The ``packed-fused`` engine promises two wins over PR 1's batched
packed path, both measured here at the golden-model dimension d = 10000:

* **single-window streaming classify** — the per-tick shape of a live
  stream (one window in, one label out).  The general packed path
  re-validates, re-packs and rebuilds its label table on every call;
  the fused engine XORs into a preallocated scratch against the
  prototype block and reduces once.  Asserted to be at least 1.2x the
  packed engine (report-only where timing is too noisy to trust, e.g.
  a 1-core CI container);
* **fused block sweep** — a whole recording classified block by block
  without materialising the ``(n_windows, words)`` H array; checked
  bit-exact and reported alongside the unfused encode-then-classify
  packed pipeline.

Run directly with ``pytest benchmarks/bench_engine_fused.py -s``;
``--smoke`` shrinks the sizes for the CI import-rot job.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._gating import gate_speedup
from benchmarks.conftest import bench_dim, bench_seconds, smoke_mode
from repro.core.config import GOLDEN_DIM, LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.hdc.backend import random_bits

DIM = bench_dim(GOLDEN_DIM, smoke=512)
FS = 256.0
N_ELECTRODES = 32
#: Acceptance floor: fused single-window classify vs the packed engine.
MIN_SPEEDUP = 1.2
#: Streaming-classify repetitions (single windows, like live ticks).
N_TICKS = 64 if smoke_mode() else 3_000


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _fitted(backend: str) -> LaelapsDetector:
    detector = LaelapsDetector(
        N_ELECTRODES,
        LaelapsConfig(dim=DIM, fs=FS, seed=7, backend=backend),
    )
    detector.fit_from_windows(
        random_bits((4, DIM), np.random.default_rng(1)),
        random_bits((4, DIM), np.random.default_rng(2)),
    )
    return detector


def test_fused_single_window_streaming_classify():
    """The fused scratch query beats the general packed sweep per tick."""
    rng = np.random.default_rng(0)
    packed = _fitted("packed")
    fused = _fitted("packed-fused")
    windows = packed.engine.pack_queries(random_bits((N_TICKS, DIM), rng))

    def drive(detector: LaelapsDetector):
        classify = detector.engine.classify_windows
        memory = detector.memory
        for i in range(N_TICKS):
            classify(memory, windows[i : i + 1])

    for i in range(N_TICKS):  # bit-exactness before timing
        labels_p, dists_p = packed.engine.classify_windows(
            packed.memory, windows[i : i + 1]
        )
        labels_f, dists_f = fused.engine.classify_windows(
            fused.memory, windows[i : i + 1]
        )
        np.testing.assert_array_equal(labels_f, labels_p)
        np.testing.assert_array_equal(dists_f, dists_p)

    repeats = 1 if smoke_mode() else 5
    packed_s = _best_of(repeats, lambda: drive(packed))
    fused_s = _best_of(repeats, lambda: drive(fused))
    speedup = packed_s / fused_s
    print(
        f"\n[fused streaming classify] d={DIM}, {N_TICKS} single-window "
        f"ticks: packed {packed_s * 1e3:.1f} ms "
        f"({N_TICKS / packed_s:,.0f}/s), fused {fused_s * 1e3:.1f} ms "
        f"({N_TICKS / fused_s:,.0f}/s) -> {speedup:.2f}x"
    )
    # On a single core the timing is too scheduler-noisy to trust.
    gate_speedup(
        speedup,
        MIN_SPEEDUP,
        min_cores=2,
        label="fused streaming classify",
        detail="fused single-window classify vs the packed engine",
    )


def test_fused_block_sweep_recording():
    """Whole-recording sweep: fused vs encode-then-classify, bit-exact."""
    seconds = bench_seconds(20.0, smoke=2.0)
    rng = np.random.default_rng(3)
    signal = rng.standard_normal((int(seconds * FS), N_ELECTRODES))
    packed = _fitted("packed")
    fused = _fitted("packed-fused")

    preds_packed = packed.predict(signal)
    preds_fused = fused.predict(signal)
    np.testing.assert_array_equal(preds_fused.labels, preds_packed.labels)
    np.testing.assert_array_equal(
        preds_fused.distances, preds_packed.distances
    )
    assert len(preds_fused) > 0

    repeats = 1 if smoke_mode() else 3
    packed_s = _best_of(repeats, lambda: packed.predict(signal))
    fused_s = _best_of(repeats, lambda: fused.predict(signal))
    n_windows = len(preds_fused)
    print(
        f"\n[fused block sweep] d={DIM}, {seconds:.0f} s of signal "
        f"({n_windows} windows): packed encode+classify {packed_s:.2f} s, "
        f"fused sweep {fused_s:.2f} s ({packed_s / fused_s:.2f}x), "
        f"peak H scratch {min(n_windows, 512)} windows instead of "
        f"{n_windows}"
    )
