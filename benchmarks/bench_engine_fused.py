"""Cross-engine benchmark matrix plus the fused-engine microbenches.

Two instruments in one file:

* **engine matrix** (``test_engine_matrix_record``) — every *registered*
  compute engine, timed on the same whole-recording workload at
  d = 2000 and d = 10000 (the golden-model dimension), reported as
  windows/s and speedup vs the unpacked reference, and serialised to
  the versioned benchmark-record schema
  (:mod:`repro.evaluation.benchrec`).  The committed repo-root
  ``BENCH_engine_matrix.json`` is this bench's full-mode output on the
  recording host; engines whose optional accelerator is missing (e.g.
  ``packed-native`` without numba) are listed with ``available = 0``
  instead of being silently dropped.  On numba-backed hosts with
  enough cores the matrix also asserts the ``packed-native`` floor:
  at least 3x over ``packed-fused`` at d = 10000 (report-only below
  4 cores, see :mod:`benchmarks._gating`).

* **fused microbenches** — the two wins the ``packed-fused`` engine
  promises over PR 1's batched packed path: the preallocated
  single-window streaming classify (asserted >= 1.2x where timing is
  trustworthy) and the fused block sweep (checked bit-exact, reported).

Run directly with ``pytest benchmarks/bench_engine_fused.py -s``;
``--smoke`` shrinks the sizes for the CI jobs and writes the matrix
record to ``BENCH_engine_matrix.smoke.json`` instead of the committed
baseline.  ``REPRO_BENCH_RECORD_MATRIX`` overrides the output path
either way.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from benchmarks._gating import gate_speedup
from benchmarks.conftest import bench_dim, bench_seconds, smoke_mode
from repro.core.config import GOLDEN_DIM, LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.hdc.backend import random_bits
from repro.hdc.engine import (
    AUTO_ENGINE,
    PACKED_FUSED_ENGINE,
    PACKED_NATIVE_ENGINE,
    UNPACKED_ENGINE,
    engine_capabilities,
    engine_names,
    resolve_engine_name,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
#: The committed cross-engine matrix baseline this bench writes/compares.
MATRIX_BASELINE_PATH = REPO_ROOT / "BENCH_engine_matrix.json"

DIM = bench_dim(GOLDEN_DIM, smoke=512)
FS = 256.0
N_ELECTRODES = 32
#: Acceptance floor: fused single-window classify vs the packed engine.
MIN_SPEEDUP = 1.2
#: Acceptance floor: packed-native vs packed-fused at the golden
#: dimension, asserted only on numba-backed hosts with >= 4 cores.
MIN_NATIVE_SPEEDUP = 3.0
#: Streaming-classify repetitions (single windows, like live ticks).
N_TICKS = 64 if smoke_mode() else 3_000


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _fitted(backend: str, dim: int = DIM) -> LaelapsDetector:
    detector = LaelapsDetector(
        N_ELECTRODES,
        LaelapsConfig(dim=dim, fs=FS, seed=7, backend=backend),
    )
    detector.fit_from_windows(
        random_bits((4, dim), np.random.default_rng(1)),
        random_bits((4, dim), np.random.default_rng(2)),
    )
    return detector


# ----------------------------------------------------------------------
# The cross-engine matrix
# ----------------------------------------------------------------------


def _matrix_dims() -> tuple[int, ...]:
    return (256,) if smoke_mode() else (2_000, GOLDEN_DIM)


def _matrix_output_path() -> Path:
    override = os.environ.get("REPRO_BENCH_RECORD_MATRIX")
    if override:
        return Path(override)
    if smoke_mode():
        return REPO_ROOT / "BENCH_engine_matrix.smoke.json"
    return MATRIX_BASELINE_PATH


def test_engine_matrix_record():
    """Every registered engine on one workload, recorded as a benchrec."""
    from repro.evaluation.benchrec import (
        BenchRecord,
        current_git_sha,
        machine_fingerprint,
        read_record,
        render_comparison,
        write_record,
    )

    caps = {row["name"]: row for row in engine_capabilities()}
    dims = _matrix_dims()
    seconds = bench_seconds(6.0, smoke=2.0)
    repeats = 1 if smoke_mode() else 3
    rng = np.random.default_rng(9)
    signal = rng.standard_normal((int(seconds * FS), N_ELECTRODES))

    metrics: dict[str, float] = {}
    for engine, row in caps.items():
        metrics[f"{engine}_available"] = 1.0 if row["available"] else 0.0
        if not row["available"]:
            print(
                f"\n[engine matrix] {engine!r} unavailable here "
                f"({row['unavailable_reason']}); listed, not timed"
            )

    times: dict[int, dict[str, float]] = {}
    for dim in dims:
        times[dim] = {}
        reference = None
        for engine in engine_names():
            if not caps[engine]["available"]:
                continue
            detector = _fitted(engine, dim)
            preds = detector.predict(signal)
            assert len(preds) > 0
            if reference is None:
                reference = preds  # the unpacked reference, always first
            else:  # every engine bit-exact before any timing
                np.testing.assert_array_equal(
                    preds.labels, reference.labels
                )
                np.testing.assert_array_equal(
                    preds.distances, reference.distances
                )
            elapsed = _best_of(repeats, lambda d=detector: d.predict(signal))
            times[dim][engine] = elapsed
            metrics[f"d{dim}_{engine}_windows_per_s"] = len(preds) / elapsed
        for engine, elapsed in times[dim].items():
            speedup = times[dim][UNPACKED_ENGINE] / elapsed
            metrics[f"d{dim}_{engine}_speedup_vs_unpacked"] = speedup
        print(f"\n[engine matrix] d={dim}, {seconds:.0f} s of signal:")
        for engine, elapsed in times[dim].items():
            print(
                f"  {engine:<14} {metrics[f'd{dim}_{engine}_windows_per_s']:>10,.0f} windows/s  "
                f"({metrics[f'd{dim}_{engine}_speedup_vs_unpacked']:.2f}x vs unpacked)"
            )

    # The packed-native floor, at the largest dim on numba-backed hosts.
    top = dims[-1]
    if PACKED_NATIVE_ENGINE in times[top]:
        native_speedup = (
            times[top][PACKED_FUSED_ENGINE] / times[top][PACKED_NATIVE_ENGINE]
        )
        metrics[f"d{top}_native_speedup_vs_fused"] = native_speedup
        gate_speedup(
            native_speedup,
            MIN_NATIVE_SPEEDUP,
            min_cores=4,
            label="engine matrix",
            detail=f"packed-native vs packed-fused at d={top}",
        )

    record = BenchRecord(
        name="engine_matrix",
        machine=machine_fingerprint(),
        git_sha=current_git_sha(),
        engine=resolve_engine_name(AUTO_ENGINE),
        config={
            "dims": list(dims),
            "seconds": seconds,
            "n_electrodes": N_ELECTRODES,
            "fs": FS,
            "repeats": repeats,
            "engines": list(engine_names()),
        },
        metrics=metrics,
    )
    out = _matrix_output_path()
    write_record(record, out)
    fresh = read_record(out)  # emit/schema gate: always enforced
    print(f"[engine matrix] record written to {out}")

    if (
        not MATRIX_BASELINE_PATH.exists()
        or out.resolve() == MATRIX_BASELINE_PATH.resolve()
    ):
        return
    baseline = read_record(MATRIX_BASELINE_PATH)  # schema errors hard-fail
    print(render_comparison(baseline, fresh))
    print("[engine matrix] deltas are report-only (runner shapes vary)")


# ----------------------------------------------------------------------
# The fused-engine microbenches
# ----------------------------------------------------------------------


def test_fused_single_window_streaming_classify():
    """The fused scratch query beats the general packed sweep per tick."""
    rng = np.random.default_rng(0)
    packed = _fitted("packed")
    fused = _fitted("packed-fused")
    windows = packed.engine.pack_queries(random_bits((N_TICKS, DIM), rng))

    def drive(detector: LaelapsDetector):
        classify = detector.engine.classify_windows
        memory = detector.memory
        for i in range(N_TICKS):
            classify(memory, windows[i : i + 1])

    for i in range(N_TICKS):  # bit-exactness before timing
        labels_p, dists_p = packed.engine.classify_windows(
            packed.memory, windows[i : i + 1]
        )
        labels_f, dists_f = fused.engine.classify_windows(
            fused.memory, windows[i : i + 1]
        )
        np.testing.assert_array_equal(labels_f, labels_p)
        np.testing.assert_array_equal(dists_f, dists_p)

    repeats = 1 if smoke_mode() else 5
    packed_s = _best_of(repeats, lambda: drive(packed))
    fused_s = _best_of(repeats, lambda: drive(fused))
    speedup = packed_s / fused_s
    print(
        f"\n[fused streaming classify] d={DIM}, {N_TICKS} single-window "
        f"ticks: packed {packed_s * 1e3:.1f} ms "
        f"({N_TICKS / packed_s:,.0f}/s), fused {fused_s * 1e3:.1f} ms "
        f"({N_TICKS / fused_s:,.0f}/s) -> {speedup:.2f}x"
    )
    # On a single core the timing is too scheduler-noisy to trust.
    gate_speedup(
        speedup,
        MIN_SPEEDUP,
        min_cores=2,
        label="fused streaming classify",
        detail="fused single-window classify vs the packed engine",
    )


def test_fused_block_sweep_recording():
    """Whole-recording sweep: fused vs encode-then-classify, bit-exact."""
    seconds = bench_seconds(20.0, smoke=2.0)
    rng = np.random.default_rng(3)
    signal = rng.standard_normal((int(seconds * FS), N_ELECTRODES))
    packed = _fitted("packed")
    fused = _fitted("packed-fused")

    preds_packed = packed.predict(signal)
    preds_fused = fused.predict(signal)
    np.testing.assert_array_equal(preds_fused.labels, preds_packed.labels)
    np.testing.assert_array_equal(
        preds_fused.distances, preds_packed.distances
    )
    assert len(preds_fused) > 0

    repeats = 1 if smoke_mode() else 3
    packed_s = _best_of(repeats, lambda: packed.predict(signal))
    fused_s = _best_of(repeats, lambda: fused.predict(signal))
    n_windows = len(preds_fused)
    print(
        f"\n[fused block sweep] d={DIM}, {seconds:.0f} s of signal "
        f"({n_windows} windows): packed encode+classify {packed_s:.2f} s, "
        f"fused sweep {fused_s:.2f} s ({packed_s / fused_s:.2f}x), "
        f"peak H scratch {min(n_windows, 512)} windows instead of "
        f"{n_windows}"
    )
