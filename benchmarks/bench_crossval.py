"""E11 — leave-one-seizure-out cross-validation (Sec. IV-B remark).

The paper reports that cross-validation on a short-time dataset
(companion study, BioCAS 2018) consistently confirmed the one-shot
models' sensitivity/specificity, while being impractical on the
long-term data for the slow baselines.  This bench runs the protocol on
one synthetic patient: every fold trains on a single seizure and must
detect the others with zero false alarms.
"""

from __future__ import annotations

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)
from repro.evaluation.crossval import leave_one_seizure_out
from repro.evaluation.report import render_table


def test_crossval(benchmark):
    generator = SyntheticIEEGGenerator(
        16, SynthesisParams(fs=256.0), seed=91
    )
    recording = generator.generate(
        540.0,
        [SeizurePlan(100.0, 25.0), SeizurePlan(220.0, 25.0),
         SeizurePlan(340.0, 25.0), SeizurePlan(460.0, 25.0)],
    )

    def factory(n_electrodes: int, fs: float):
        return LaelapsDetector(
            n_electrodes, LaelapsConfig(dim=1_000, fs=fs, seed=8)
        )

    result = benchmark.pedantic(
        lambda: leave_one_seizure_out(factory, recording),
        rounds=1, iterations=1,
    )
    print()
    print(render_table(
        ["train on", "detected", "FDR [/h]", "mean delay [s]"],
        [
            [f"seizure {f.train_seizure_index}",
             f"{f.metrics.n_detected}/{f.metrics.n_seizures}",
             f.metrics.fdr_per_hour, f.metrics.mean_delay_s]
            for f in result.folds
        ],
        title="Leave-one-seizure-out cross-validation (one patient)",
    ))
    print(f"mean sensitivity {100 * result.mean_sensitivity:.1f} %, "
          f"mean FDR {result.mean_fdr_per_hour:.2f}/h")
    assert result.mean_sensitivity >= 0.75
    assert result.mean_fdr_per_hour == 0.0
