"""E3 — Table II: time and energy per classification event on the TX2.

Regenerates the implementation study with the calibrated cost model.
Target ratios (paper): at 128 electrodes SVM 3.9x / CNN 16x / LSTM 487x
slower than Laelaps (2.9x / 16x / 464x more energy); at 24 electrodes
1.7x / 4.2x / 113x (1.4x / 4.1x / 124x).
"""

from __future__ import annotations

import pytest

from repro.evaluation.report import render_table
from repro.hw.energy import MethodCostModel, table2


def test_table2(benchmark):
    rows = benchmark(lambda: table2(MethodCostModel()))
    print()
    print(render_table(
        ["Elect", "Method", "Res", "time[ms]", "x", "energy[mJ]", "x"],
        [[r["electrodes"], r["method"], r["resource"], r["time_ms"],
          r["time_ratio"], r["energy_mj"], r["energy_ratio"]] for r in rows],
        title="Table II (reproduction)",
        precision=1,
    ))
    by_key = {(r["electrodes"], r["method"]): r for r in rows}
    assert by_key[(128, "svm")]["time_ratio"] == pytest.approx(3.9, rel=0.05)
    assert by_key[(128, "cnn")]["time_ratio"] == pytest.approx(16.0, rel=0.05)
    assert by_key[(128, "lstm")]["time_ratio"] == pytest.approx(487.0, rel=0.05)
    assert by_key[(24, "svm")]["time_ratio"] == pytest.approx(1.7, rel=0.05)
    assert by_key[(24, "cnn")]["time_ratio"] == pytest.approx(4.2, rel=0.05)
    assert by_key[(24, "lstm")]["time_ratio"] == pytest.approx(113.0, rel=0.05)
    assert by_key[(128, "laelaps")]["time_ms"] == pytest.approx(13.0, rel=0.01)
    assert by_key[(24, "laelaps")]["time_ms"] == pytest.approx(12.5, rel=0.01)
