"""E2 — Table I "d" column: per-patient dimension tuning.

The paper builds a 10 kbit golden model per patient and shrinks d while
performance holds, reaching 1 kbit for several patients (mean 4.3 kbit).
Running the full descent for 18 patients is the most expensive
experiment, so this bench runs it for a three-patient sample and asserts
the qualitative result: a large reduction factor with unchanged
sensitivity/FDR.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale, smoke_mode
from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.tuning import tune_dimension
from repro.data.cohort import cohort_patient_specs, synthesize_patient
from repro.data.splits import split_patient
from repro.evaluation.report import render_table
from repro.evaluation.runner import finalize_run, run_patient, tune_run_tr

#: A small sample spanning electrode counts (P14 = 24e, P3 = 64e).
#: Smoke mode keeps one patient and a two-step descent: enough to catch
#: import/shape rot without paying for the full golden-model sweep.
SAMPLE_IDS = ("P3",) if smoke_mode() else ("P3", "P11", "P17")
CANDIDATES = (
    (2_000, 1_000) if smoke_mode()
    else (10_000, 8_000, 6_000, 4_000, 2_000, 1_000)
)


def _tune_patient(spec) -> tuple[int, float]:
    patient = synthesize_patient(
        spec, hours_scale=1.0 / bench_scale(), fs=256.0
    )
    split = split_patient(patient)

    def evaluate(dim: int):
        def factory(n_electrodes: int, fs: float):
            return LaelapsDetector(
                n_electrodes, LaelapsConfig(dim=dim, fs=fs, seed=4)
            )

        run = run_patient(factory, patient, split=split)
        metrics = finalize_run(run, tr=tune_run_tr(run)).metrics
        return (metrics.sensitivity, -metrics.fdr_per_hour)

    result = tune_dimension(evaluate, CANDIDATES)
    return result.chosen_dim, result.reduction_factor


def test_dimension_tuning(benchmark):
    specs = {s.patient_id: s for s in cohort_patient_specs()}
    sample = [specs[pid] for pid in SAMPLE_IDS]

    def run():
        return {s.patient_id: _tune_patient(s) for s in sample}

    chosen = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [pid, dim, f"{factor:.1f}x"]
        for pid, (dim, factor) in chosen.items()
    ]
    print()
    print(render_table(
        ["ID", "chosen d [bit]", "vs golden"],
        rows,
        title='Table I "d" column (sample): golden-model descent',
    ))
    dims = [dim for dim, _ in chosen.values()]
    assert all(d <= 10_000 for d in dims)
    if smoke_mode():
        return
    # Paper: 14/18 patients shrink below 10 kbit, several to 1 kbit.
    assert min(dims) <= 2_000
    mean_kbit = sum(dims) / len(dims) / 1_000
    print(f"mean chosen d = {mean_kbit:.1f} kbit (paper cohort mean: 4.3)")
    assert mean_kbit == pytest.approx(4.3, abs=4.0)
