"""Setuptools shim.

``pip install -e .`` needs the ``wheel`` package for PEP 517 editable
builds; fully offline environments that lack it can fall back to
``python setup.py develop``.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
