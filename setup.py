"""Package metadata for the Laelaps reproduction.

The project targets Python >= 3.10 (PEP 604 unions and dataclass
features are used throughout).  numpy 2.0 provides the hardware
popcount (``np.bitwise_count``); older numpy down to the declared floor
works through the byte-lookup fallback in ``repro.hdc.backend``.

Install with ``pip install -e .`` (needs the ``wheel`` package for
PEP 517 editable builds); fully offline environments that lack it can
fall back to ``python setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-laelaps",
    version="0.2.0",
    description=(
        "Reproduction of Laelaps: seizure detection from iEEG with "
        "local binary patterns and hyperdimensional computing"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            "repro-laelaps=repro.cli:main",
        ],
    },
)
